//! Mitigation evaluation (paper §VI-C).
//!
//! The paper proposes defenses at three layers; this module re-runs the
//! attacks under each CDN-side and server-side option so their effect can
//! be quantified (the `mitigation` bench bin prints the ablation):
//!
//! * **Laziness** — forward ranges unchanged; kills SBR completely but
//!   forfeits the caching benefit (what G-Core shipped as `slice`).
//! * **Capped expansion (+8 KB)** — the paper's "better way": keeps
//!   prefetching while bounding the traffic difference.
//! * **Coalesce / reject overlapping** — the RFC 7233 §6.1 suggestions
//!   that kill OBR (what CDN77 and StackPath shipped).
//! * **Origin rate limiting** — the server-side "local DoS defense",
//!   which the paper notes is weak because attack requests arrive from
//!   many CDN egress nodes.

use rangeamp_cdn::{MitigationConfig, Vendor};
use rangeamp_origin::RateLimiter;
use serde::Serialize;

use crate::attack::{ObrAttack, SbrAttack};

/// A named mitigation variant for ablation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Defense {
    /// The vulnerable baseline (no mitigation).
    None,
    /// Force the *Laziness* policy.
    Laziness,
    /// Capped expansion (+8 KB) with multi-range coalescing.
    CappedExpansion8K,
    /// Coalesce multi-range requests before replying.
    CoalesceMulti,
    /// Reject overlapping multi-range requests with 416.
    RejectOverlapping,
}

impl Defense {
    /// All CDN-side variants, baseline first.
    pub const ALL: [Defense; 5] = [
        Defense::None,
        Defense::Laziness,
        Defense::CappedExpansion8K,
        Defense::CoalesceMulti,
        Defense::RejectOverlapping,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Defense::None => "none (vulnerable)",
            Defense::Laziness => "laziness",
            Defense::CappedExpansion8K => "capped expansion +8KB",
            Defense::CoalesceMulti => "coalesce multi-range",
            Defense::RejectOverlapping => "reject overlapping",
        }
    }

    /// The profile-level configuration for this defense.
    pub fn config(&self) -> MitigationConfig {
        match self {
            Defense::None => MitigationConfig::none(),
            Defense::Laziness => MitigationConfig {
                force_laziness: true,
                ..MitigationConfig::none()
            },
            Defense::CappedExpansion8K => MitigationConfig::capped_expansion_8k(),
            Defense::CoalesceMulti => MitigationConfig {
                coalesce_multi: true,
                ..MitigationConfig::none()
            },
            Defense::RejectOverlapping => MitigationConfig {
                reject_overlapping: true,
                ..MitigationConfig::none()
            },
        }
    }
}

/// Outcome of one (attack, defense) cell.
#[derive(Debug, Clone, Serialize)]
pub struct DefenseOutcome {
    /// The defense evaluated.
    pub defense: Defense,
    /// Amplification factor with the defense active.
    pub amplification_factor: f64,
    /// Factor relative to the vulnerable baseline (1.0 = no effect).
    pub residual_fraction: f64,
}

/// Runs the SBR attack against `vendor` under every CDN-side defense.
pub fn evaluate_sbr_defenses(vendor: Vendor, resource_size: u64) -> Vec<DefenseOutcome> {
    let baseline = SbrAttack::new(vendor, resource_size)
        .run()
        .amplification_factor();
    Defense::ALL
        .iter()
        .map(|&defense| {
            let profile = vendor.profile().with_mitigation(defense.config());
            let factor = SbrAttack::new(vendor, resource_size)
                .with_profile(profile)
                .run()
                .amplification_factor();
            DefenseOutcome {
                defense,
                amplification_factor: factor,
                residual_fraction: if baseline > 0.0 {
                    factor / baseline
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Runs the OBR attack for a cascade under BCDN-side defenses.
///
/// Only the overlap-sensitive defenses apply; Laziness at the BCDN does
/// not stop OBR (the BCDN still builds the n-part reply from the 200 the
/// lazily-forwarded request provokes), which the evaluation makes
/// visible.
pub fn evaluate_obr_defenses(fcdn: Vendor, bcdn: Vendor, n: usize) -> Vec<DefenseOutcome> {
    let attack = |config: Option<MitigationConfig>| -> f64 {
        let mut obr = ObrAttack::new(fcdn, bcdn).overlapping_ranges(n);
        if let Some(config) = config {
            obr = obr.with_bcdn_mitigation(config);
        }
        obr.run().amplification_factor()
    };
    let baseline = attack(None);
    [
        Defense::None,
        Defense::CoalesceMulti,
        Defense::RejectOverlapping,
    ]
    .iter()
    .map(|&defense| {
        let factor = match defense {
            Defense::None => baseline,
            other => attack(Some(other.config())),
        };
        DefenseOutcome {
            defense,
            amplification_factor: factor,
            residual_fraction: if baseline > 0.0 {
                factor / baseline
            } else {
                0.0
            },
        }
    })
    .collect()
}

/// Evaluates the server-side "local DoS defense" (§VI-C): a per-peer
/// rate limiter at the origin, attacked through `edges` distinct CDN
/// egress nodes at `rate_per_edge` requests/second. Returns the fraction
/// of attack requests admitted — the paper's point is that this
/// approaches 1.0 as the attack spreads across egress nodes.
pub fn origin_rate_limit_admission(
    limit_per_sec: f64,
    edges: usize,
    rate_per_edge: u32,
    duration_secs: u64,
) -> f64 {
    let mut limiter = RateLimiter::new(limit_per_sec, limit_per_sec.ceil() as u32);
    let mut admitted = 0u64;
    let mut total = 0u64;
    for second in 0..duration_secs {
        for edge in 0..edges {
            for k in 0..rate_per_edge {
                let at_ms = second * 1000 + (k as u64 * 1000) / rate_per_edge as u64;
                total += 1;
                if limiter.admit(&format!("egress-{edge}"), at_ms) {
                    admitted += 1;
                }
            }
        }
    }
    admitted as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn laziness_kills_sbr() {
        let outcomes = evaluate_sbr_defenses(Vendor::Akamai, MB);
        let lazy = outcomes
            .iter()
            .find(|o| o.defense == Defense::Laziness)
            .expect("present");
        assert!(lazy.amplification_factor < 2.0, "{outcomes:#?}");
        assert!(lazy.residual_fraction < 0.01);
    }

    #[test]
    fn capped_expansion_bounds_sbr() {
        let outcomes = evaluate_sbr_defenses(Vendor::Cloudflare, MB);
        let capped = outcomes
            .iter()
            .find(|o| o.defense == Defense::CappedExpansion8K)
            .expect("present");
        // 8 KB of origin traffic for a ~800 B client response: ≈ 12×,
        // versus ≈ 1300× for the baseline.
        assert!(capped.amplification_factor < 20.0, "{outcomes:#?}");
    }

    #[test]
    fn reject_overlapping_kills_obr() {
        let outcomes = evaluate_obr_defenses(Vendor::Cloudflare, Vendor::Akamai, 64);
        let baseline = outcomes
            .iter()
            .find(|o| o.defense == Defense::None)
            .expect("present");
        let reject = outcomes
            .iter()
            .find(|o| o.defense == Defense::RejectOverlapping)
            .expect("present");
        assert!(baseline.amplification_factor > 30.0, "{outcomes:#?}");
        assert!(reject.amplification_factor < 2.0, "{outcomes:#?}");
    }

    #[test]
    fn coalesce_kills_obr() {
        let outcomes = evaluate_obr_defenses(Vendor::StackPath, Vendor::Akamai, 64);
        let coalesced = outcomes
            .iter()
            .find(|o| o.defense == Defense::CoalesceMulti)
            .expect("present");
        assert!(coalesced.amplification_factor < 3.0, "{outcomes:#?}");
    }

    #[test]
    fn distributed_attack_defeats_origin_rate_limiting() {
        // One edge hammering: mostly blocked.
        let single = origin_rate_limit_admission(1.0, 1, 10, 10);
        assert!(single < 0.2, "got {single}");
        // The same request volume spread over 100 egress nodes: admitted.
        let spread = origin_rate_limit_admission(1.0, 100, 1, 10);
        assert!(spread > 0.95, "got {spread}");
    }
}
