//! `rangeamp` — canonical command-line tooling for the RangeAmp testbed.
//!
//! ```text
//! rangeamp sbr  --cdn akamai --size-mb 10 [--rounds 3]
//! rangeamp obr  --fcdn cloudflare --bcdn akamai [--n 1024]
//! rangeamp scan [--cdn fastly]
//! rangeamp flood --m 14
//! rangeamp drop --cdn cdn77 --size-mb 10
//! rangeamp list
//! ```
//!
//! Everything runs against the in-process simulation testbed; nothing
//! touches a network.

use std::process::ExitCode;

use rangeamp::attack::{DroppedGetAttack, FloodExperiment, ObrAttack, SbrAttack};
use rangeamp::report::TextTable;
use rangeamp::scanner::Scanner;
use rangeamp::Testbed;
use rangeamp_cdn::Vendor;

const MB: u64 = 1024 * 1024;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "sbr" => cmd_sbr(&args[1..]),
        "obr" => cmd_obr(&args[1..]),
        "scan" => cmd_scan(&args[1..]),
        "flood" => cmd_flood(&args[1..]),
        "drop" => cmd_drop(&args[1..]),
        "list" => cmd_list(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rangeamp — HTTP range-request amplification testbed (simulation only)

USAGE:
  rangeamp sbr   --cdn <vendor> [--size-mb <n>] [--rounds <k>] [--trace]
  rangeamp obr   --fcdn <vendor> --bcdn <vendor> [--n <ranges>]
  rangeamp scan  [--cdn <vendor>]
  rangeamp flood [--m <req/s>]
  rangeamp drop  --cdn <vendor> [--size-mb <n>]
  rangeamp list

Vendor names are case-insensitive and ignore spaces (e.g. akamai,
alibaba-cloud, gcorelabs, 'G-Core Labs').";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_vendor(raw: &str) -> Result<Vendor, String> {
    let normalized: String = raw
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_lowercase();
    Vendor::ALL
        .into_iter()
        .find(|v| {
            v.name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase()
                == normalized
        })
        .ok_or_else(|| format!("unknown vendor {raw:?}; try `rangeamp list`"))
}

fn parse_number<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("invalid {what}: {raw:?}"))
}

fn cmd_sbr(args: &[String]) -> Result<(), String> {
    let vendor = parse_vendor(&flag(args, "--cdn").ok_or("missing --cdn")?)?;
    let size_mb: u64 = match flag(args, "--size-mb") {
        Some(raw) => parse_number(&raw, "--size-mb")?,
        None => 10,
    };
    let rounds: u64 = match flag(args, "--rounds") {
        Some(raw) => parse_number(&raw, "--rounds")?,
        None => 1,
    };
    let trace = args.iter().any(|a| a == "--trace");
    let attack = SbrAttack::new(vendor, size_mb * MB);
    println!("SBR against {vendor}, {size_mb} MB resource");
    println!("exploited case: {}", attack.exploited_case().description);
    let bed = Testbed::builder()
        .vendor(vendor)
        .resource(rangeamp::TARGET_PATH, size_mb * MB)
        .build();
    for round in 1..=rounds {
        let report = attack.run_on(&bed, round);
        println!(
            "round {round}: attacker {} B ⇄ origin {} B → {:.0}×",
            report.traffic.attacker_response_bytes,
            report.traffic.victim_response_bytes,
            report.amplification_factor()
        );
        if trace {
            println!("-- client-cdn --");
            print!("{}", bed.client_segment().capture().render());
            println!("-- cdn-origin --");
            print!("{}", bed.origin_segment().capture().render());
        }
    }
    Ok(())
}

fn cmd_obr(args: &[String]) -> Result<(), String> {
    let fcdn = parse_vendor(&flag(args, "--fcdn").ok_or("missing --fcdn")?)?;
    let bcdn = parse_vendor(&flag(args, "--bcdn").ok_or("missing --bcdn")?)?;
    let mut attack = ObrAttack::new(fcdn, bcdn);
    if let Some(raw) = flag(args, "--n") {
        attack = attack.overlapping_ranges(parse_number(&raw, "--n")?);
    }
    println!("OBR through {fcdn} → {bcdn} (1 KB resource)");
    println!("max n admitted by header limits: {}", attack.max_n());
    let report = attack.run();
    println!("used n            : {}", report.n);
    println!("exploited case    : {}", report.exploited_case);
    println!("server → BCDN     : {} B", report.server_to_bcdn_bytes);
    println!("BCDN   → FCDN     : {} B", report.bcdn_to_fcdn_bytes);
    println!("attacker accepted : {} B", report.attacker_bytes);
    println!("amplification     : {:.2}×", report.amplification_factor());
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let scanner = Scanner::default();
    let rows = match flag(args, "--cdn") {
        Some(raw) => scanner.scan_vendor_table1(parse_vendor(&raw)?),
        None => scanner.scan_table1(),
    };
    let mut table = TextTable::new(
        "SBR-vulnerable range forwarding behaviours",
        &["CDN", "Vulnerable Range Format", "Forwarded Range Format"],
    );
    for row in rows {
        table.row(vec![
            row.vendor,
            row.vulnerable_format,
            row.forwarded_format,
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_flood(args: &[String]) -> Result<(), String> {
    let m: u32 = match flag(args, "--m") {
        Some(raw) => parse_number(&raw, "--m")?,
        None => 14,
    };
    let report = FloodExperiment::paper_config(m).run();
    println!(
        "flood m={m}: origin steady {:.1} Mbps of 1000, client peak {:.1} Kbps",
        report.steady_origin_mbps(),
        report.peak_client_kbps()
    );
    for (second, mbps) in report.origin_outgoing_mbps.iter().enumerate() {
        println!("t={second:>2}s  {mbps:7.1} Mbps");
    }
    Ok(())
}

fn cmd_drop(args: &[String]) -> Result<(), String> {
    let vendor = parse_vendor(&flag(args, "--cdn").ok_or("missing --cdn")?)?;
    let size_mb: u64 = match flag(args, "--size-mb") {
        Some(raw) => parse_number(&raw, "--size-mb")?,
        None => 10,
    };
    let report = DroppedGetAttack::new(vendor, size_mb * MB).run();
    println!("dropped-GET against {vendor} ({size_mb} MB resource)");
    println!(
        "keeps backend alive on abort: {}",
        report.keeps_backend_alive
    );
    println!(
        "origin sent {} B for {} attacker bytes",
        report.origin_bytes, report.attacker_bytes
    );
    println!(
        "defense effective: {}",
        report.defense_effective(size_mb * MB)
    );
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("emulated CDN vendor profiles:");
    for vendor in Vendor::ALL {
        let fcdn = if vendor.is_fcdn_vulnerable() {
            " [OBR-FCDN]"
        } else {
            ""
        };
        let bcdn = if vendor.is_bcdn_vulnerable() {
            " [OBR-BCDN]"
        } else {
            ""
        };
        println!("  {}{fcdn}{bcdn}", vendor.name());
    }
    Ok(())
}
