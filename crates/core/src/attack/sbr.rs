//! The Small Byte Range (SBR) attack (paper §IV-B).
//!
//! The attacker sends a crafted single-range request with a random query
//! string (forcing a cache miss) to a CDN that applies the *Deletion* or
//! *Expansion* policy; the CDN fetches the whole (or a much larger)
//! representation from the origin while the attacker receives a few
//! hundred bytes. Amplification grows with the target resource size.

use rangeamp_cdn::{Vendor, VendorProfile};
use rangeamp_http::range::RangeHeader;
use rangeamp_http::Request;

use crate::amplification::{AmplificationMeasurement, TrafficBreakdown};
use crate::testbed::{Testbed, TARGET_HOST, TARGET_PATH};

/// A vendor's exploited range case (Table IV column 2): the request
/// sequence that maximizes origin-side traffic while minimizing
/// attacker-side traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploitedCase {
    /// Human-readable form, matching the paper's notation (e.g.
    /// `bytes=0-0 & bytes=0-0` for KeyCDN's request-twice case).
    pub description: String,
    /// The `Range` header of each request, in send order. All requests
    /// share one cache-busted URL (KeyCDN's second request must hit the
    /// same cache key).
    pub ranges: Vec<RangeHeader>,
}

/// Selects the exploited range case for `vendor` at `file_size`, per
/// Table IV (including the Azure 8 MB, Huawei 10 MB, and CloudFront
/// multi-range conditionals).
pub fn exploited_range_case(vendor: Vendor, file_size: u64) -> ExploitedCase {
    const AZURE_WINDOW: u64 = 8 * 1024 * 1024;
    const HUAWEI_THRESHOLD: u64 = 10 * 1024 * 1024;

    let single = |text: &str| ExploitedCase {
        description: text.to_string(),
        ranges: vec![RangeHeader::parse(text).expect("static case is valid")],
    };
    match vendor {
        Vendor::AlibabaCloud => single("bytes=-1"),
        Vendor::Azure => {
            if file_size <= AZURE_WINDOW {
                single("bytes=0-0")
            } else {
                single("bytes=8388608-8388608")
            }
        }
        Vendor::CloudFront => single("bytes=0-0,9437184-9437184"),
        Vendor::HuaweiCloud => {
            if file_size < HUAWEI_THRESHOLD {
                single("bytes=-1")
            } else {
                single("bytes=0-0")
            }
        }
        Vendor::KeyCdn => {
            let range = RangeHeader::parse("bytes=0-0").expect("static case is valid");
            ExploitedCase {
                description: "bytes=0-0 & bytes=0-0".to_string(),
                ranges: vec![range.clone(), range],
            }
        }
        _ => single("bytes=0-0"),
    }
}

/// A configured SBR attack.
///
/// # Example
///
/// ```
/// use rangeamp::attack::SbrAttack;
/// use rangeamp_cdn::Vendor;
///
/// let report = SbrAttack::new(Vendor::GCoreLabs, 10 * 1024 * 1024).run();
/// // Table IV: G-Core Labs reaches ≈ 17 197× at 10 MB.
/// assert!(report.amplification_factor() > 10_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct SbrAttack {
    vendor: Vendor,
    resource_size: u64,
    profile: Option<VendorProfile>,
}

impl SbrAttack {
    /// Configures an attack against `vendor` hosting a resource of
    /// `resource_size` bytes.
    pub fn new(vendor: Vendor, resource_size: u64) -> SbrAttack {
        SbrAttack {
            vendor,
            resource_size,
            profile: None,
        }
    }

    /// Overrides the vendor profile (e.g. with mitigations applied).
    pub fn with_profile(mut self, profile: VendorProfile) -> SbrAttack {
        self.profile = Some(profile);
        self
    }

    /// The vendor under attack.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// The target resource size in bytes.
    pub fn resource_size(&self) -> u64 {
        self.resource_size
    }

    /// The exploited case this attack will send.
    pub fn exploited_case(&self) -> ExploitedCase {
        exploited_range_case(self.vendor, self.resource_size)
    }

    /// Builds a fresh testbed and runs one attack round.
    pub fn run(&self) -> AmplificationMeasurement {
        let profile = self
            .profile
            .clone()
            .unwrap_or_else(|| self.vendor.profile());
        let bed = Testbed::builder()
            .profile(profile)
            .resource(TARGET_PATH, self.resource_size)
            .build();
        self.run_on(&bed, 1)
    }

    /// Runs one attack round on an existing testbed. `round` seeds the
    /// cache-busting query string; traffic counters are reset first so
    /// the measurement covers exactly this round.
    pub fn run_on(&self, bed: &Testbed, round: u64) -> AmplificationMeasurement {
        bed.reset_traffic();
        let case = self.exploited_case();
        let uri = format!("{TARGET_PATH}?rnd={round:016x}");
        for range in &case.ranges {
            let req = Request::get(&uri)
                .header("Host", TARGET_HOST)
                .header("Range", range.to_string())
                .build();
            bed.request(&req);
        }
        AmplificationMeasurement {
            target: self.vendor.name().to_string(),
            exploited_case: case.description,
            resource_size: self.resource_size,
            traffic: TrafficBreakdown::from_stats(
                bed.client_segment().stats(),
                bed.origin_segment().stats(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn case_selection_matches_table_iv() {
        assert_eq!(
            exploited_range_case(Vendor::Akamai, MB).description,
            "bytes=0-0"
        );
        assert_eq!(
            exploited_range_case(Vendor::AlibabaCloud, MB).description,
            "bytes=-1"
        );
        assert_eq!(
            exploited_range_case(Vendor::Azure, MB).description,
            "bytes=0-0"
        );
        assert_eq!(
            exploited_range_case(Vendor::Azure, 9 * MB).description,
            "bytes=8388608-8388608"
        );
        assert_eq!(
            exploited_range_case(Vendor::CloudFront, 25 * MB).description,
            "bytes=0-0,9437184-9437184"
        );
        assert_eq!(
            exploited_range_case(Vendor::HuaweiCloud, MB).description,
            "bytes=-1"
        );
        assert_eq!(
            exploited_range_case(Vendor::HuaweiCloud, 10 * MB).description,
            "bytes=0-0"
        );
        assert_eq!(
            exploited_range_case(Vendor::KeyCdn, MB).description,
            "bytes=0-0 & bytes=0-0"
        );
        assert_eq!(exploited_range_case(Vendor::KeyCdn, MB).ranges.len(), 2);
    }

    #[test]
    fn akamai_1mb_amplifies_three_orders() {
        let report = SbrAttack::new(Vendor::Akamai, MB).run();
        let factor = report.amplification_factor();
        assert!(factor > 1000.0, "got {factor}");
        assert!(
            report.traffic.attacker_response_bytes < 1500,
            "paper Fig 6b bound"
        );
    }

    #[test]
    fn amplification_grows_with_file_size() {
        let small = SbrAttack::new(Vendor::Fastly, MB)
            .run()
            .amplification_factor();
        let large = SbrAttack::new(Vendor::Fastly, 5 * MB)
            .run()
            .amplification_factor();
        assert!(large > 4.0 * small, "proportionality: {small} → {large}");
    }

    #[test]
    fn keycdn_round_sends_two_requests() {
        let report = SbrAttack::new(Vendor::KeyCdn, MB).run();
        assert_eq!(report.traffic.attacker_requests, 2);
        assert!(report.amplification_factor() > 500.0);
    }

    #[test]
    fn repeated_rounds_amplify_independently() {
        let attack = SbrAttack::new(Vendor::Akamai, MB);
        let bed = Testbed::builder()
            .vendor(Vendor::Akamai)
            .resource(TARGET_PATH, MB)
            .build();
        let first = attack.run_on(&bed, 1).amplification_factor();
        let second = attack.run_on(&bed, 2).amplification_factor();
        assert!(
            first > 1000.0 && second > 1000.0,
            "cache busting keeps it hot"
        );
    }
}
