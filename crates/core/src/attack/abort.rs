//! The dropped-connection attack of Triukose et al. (ESORICS 2009),
//! which the paper re-evaluates in §VIII:
//!
//! > "Triukose et al proposed an attack of exhausting the bandwidth of
//! > the origin server by rapidly dropping the front-end connections. We
//! > evaluated this attack and found that most CDNs can mitigate it.
//! > They will break the corresponding back-end connections when the
//! > front-end connections are abnormally cut off. However, this defense
//! > is invalid under our RangeAmp attacks."
//!
//! [`DroppedGetAttack`] reproduces that evaluation: a plain cache-busted
//! `GET` whose front-end connection is aborted immediately. Vendors that
//! break the back-end connection stop the origin transfer after the
//! in-flight buffer; CDNsun and CDN77 let it complete. [`compare_with_sbr`]
//! then shows the paper's point — the SBR attack amplifies even against
//! vendors that defeat the dropped-connection attack.

use rangeamp_cdn::Vendor;
use rangeamp_http::Request;
use serde::Serialize;

use crate::attack::SbrAttack;
use crate::testbed::{Testbed, TARGET_HOST, TARGET_PATH};

/// One dropped-connection measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AbortMeasurement {
    /// Vendor attacked.
    pub vendor: String,
    /// Whether the vendor keeps the back-end connection alive on abort.
    pub keeps_backend_alive: bool,
    /// Response bytes the attacker actually accepted before aborting.
    pub attacker_bytes: u64,
    /// Response bytes the origin sent.
    pub origin_bytes: u64,
}

impl AbortMeasurement {
    /// Origin bytes per attacker byte; `f64::INFINITY` when the attacker
    /// accepted nothing.
    pub fn amplification_factor(&self) -> f64 {
        if self.attacker_bytes == 0 {
            if self.origin_bytes == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.origin_bytes as f64 / self.attacker_bytes as f64
        }
    }

    /// Whether the vendor's break-backend defense worked: the origin sent
    /// at most the abort buffer, not the whole resource.
    pub fn defense_effective(&self, resource_size: u64) -> bool {
        self.origin_bytes < resource_size
    }
}

/// The dropped-connection attack configuration.
#[derive(Debug, Clone)]
pub struct DroppedGetAttack {
    vendor: Vendor,
    resource_size: u64,
    /// Bytes the attacker accepts before dropping (0 = immediate abort).
    receive_before_abort: u64,
}

impl DroppedGetAttack {
    /// Configures the attack against `vendor` with a resource of
    /// `resource_size` bytes and an immediate abort.
    pub fn new(vendor: Vendor, resource_size: u64) -> DroppedGetAttack {
        DroppedGetAttack {
            vendor,
            resource_size,
            receive_before_abort: 0,
        }
    }

    /// Accept this many bytes before dropping the connection.
    pub fn receive_before_abort(mut self, bytes: u64) -> DroppedGetAttack {
        self.receive_before_abort = bytes;
        self
    }

    /// Runs one dropped-GET round on a fresh testbed.
    pub fn run(&self) -> AbortMeasurement {
        let bed = Testbed::builder()
            .vendor(self.vendor)
            .resource(TARGET_PATH, self.resource_size)
            .build();
        let req = Request::get(&format!("{TARGET_PATH}?drop=1"))
            .header("Host", TARGET_HOST)
            .build();
        bed.request_aborted(&req, self.receive_before_abort);
        AbortMeasurement {
            vendor: self.vendor.name().to_string(),
            keeps_backend_alive: self.vendor.profile().keeps_backend_alive_on_abort,
            attacker_bytes: bed.client_segment().stats().response_bytes,
            origin_bytes: bed.origin_segment().stats().response_bytes,
        }
    }
}

/// The §VIII comparison: for each vendor, does the break-backend defense
/// stop the dropped-GET attack, and does the SBR attack bypass it anyway?
#[derive(Debug, Clone, Serialize)]
pub struct DefenseComparison {
    /// Vendor.
    pub vendor: String,
    /// Origin traffic for one dropped GET (defense in play).
    pub dropped_get_origin_bytes: u64,
    /// Origin traffic for one SBR round (defense irrelevant).
    pub sbr_origin_bytes: u64,
}

/// Runs the comparison for every vendor at `resource_size`.
pub fn compare_with_sbr(resource_size: u64) -> Vec<DefenseComparison> {
    Vendor::ALL
        .iter()
        .map(|&vendor| {
            let dropped = DroppedGetAttack::new(vendor, resource_size).run();
            let sbr = SbrAttack::new(vendor, resource_size).run();
            DefenseComparison {
                vendor: vendor.name().to_string(),
                dropped_get_origin_bytes: dropped.origin_bytes,
                sbr_origin_bytes: sbr.traffic.victim_response_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn most_vendors_defeat_dropped_get() {
        // §VIII: "most CDNs can mitigate it".
        for vendor in [
            Vendor::Akamai,
            Vendor::Cloudflare,
            Vendor::Fastly,
            Vendor::StackPath,
        ] {
            let m = DroppedGetAttack::new(vendor, 10 * MB).run();
            assert!(!m.keeps_backend_alive, "{vendor}");
            assert!(
                m.defense_effective(10 * MB),
                "{vendor}: origin sent {} of 10 MB",
                m.origin_bytes
            );
        }
    }

    #[test]
    fn cdn77_and_cdnsun_remain_vulnerable_to_dropped_get() {
        for vendor in [Vendor::Cdn77, Vendor::CdnSun] {
            let m = DroppedGetAttack::new(vendor, 10 * MB).run();
            assert!(m.keeps_backend_alive, "{vendor}");
            assert!(
                m.origin_bytes > 10 * MB,
                "{vendor}: backend should complete, got {}",
                m.origin_bytes
            );
        }
    }

    #[test]
    fn sbr_bypasses_the_break_backend_defense() {
        // §VIII: "this defense is invalid under our RangeAmp attacks" —
        // SBR never aborts the front-end connection, so breaking back-end
        // connections on abort does nothing.
        for row in compare_with_sbr(5 * MB) {
            assert!(
                row.sbr_origin_bytes > 5 * MB,
                "{}: SBR origin traffic {}",
                row.vendor,
                row.sbr_origin_bytes
            );
        }
    }

    #[test]
    fn attacker_cost_is_what_they_accepted() {
        let m = DroppedGetAttack::new(Vendor::Cdn77, MB)
            .receive_before_abort(256)
            .run();
        assert_eq!(m.attacker_bytes, 256);
        assert!(m.amplification_factor() > 1000.0);
    }
}
