//! The Overlapping Byte Ranges (OBR) attack (paper §IV-C).
//!
//! The attacker cascades two CDNs, disables range support on their own
//! origin, and sends a multi-range request with `n` overlapping ranges to
//! the FCDN. A Table II FCDN forwards the header unchanged; a Table III
//! BCDN answers with an `n`-part response — inflating the `fcdn-bcdn`
//! link to roughly `n ×` the resource size while the origin ships the
//! resource once. The attacker caps their own cost with a small receive
//! window.

use rangeamp_cdn::{max_overlapping_ranges_with_hop, ObrRangeCase, Vendor};
use rangeamp_http::Request;
use serde::Serialize;

use crate::amplification::{AmplificationMeasurement, TrafficBreakdown};
use crate::testbed::{CascadeTestbed, TARGET_HOST, TARGET_PATH};

/// The 11 cascaded combinations of Table V (4 FCDNs × 3 BCDNs minus the
/// StackPath self-cascade).
pub fn obr_combos() -> Vec<(Vendor, Vendor)> {
    let fcdns = Vendor::ALL
        .iter()
        .copied()
        .filter(Vendor::is_fcdn_vulnerable);
    let mut combos = Vec::new();
    for fcdn in fcdns {
        for bcdn in Vendor::ALL
            .iter()
            .copied()
            .filter(Vendor::is_bcdn_vulnerable)
        {
            if fcdn == bcdn {
                continue; // the paper leaves StackPath→StackPath blank
            }
            combos.push((fcdn, bcdn));
        }
    }
    combos
}

/// Result of one OBR run (one Table V row).
#[derive(Debug, Clone, Serialize)]
pub struct ObrMeasurement {
    /// Front-end CDN.
    pub fcdn: String,
    /// Back-end CDN.
    pub bcdn: String,
    /// Exploited range case in the paper's notation.
    pub exploited_case: String,
    /// Number of overlapping ranges used.
    pub n: usize,
    /// Response bytes on `bcdn-origin` ("Traffic from Server to BCDN").
    pub server_to_bcdn_bytes: u64,
    /// Response bytes on `fcdn-bcdn` ("Traffic from BCDN to FCDN").
    pub bcdn_to_fcdn_bytes: u64,
    /// Response bytes the attacker actually accepted.
    pub attacker_bytes: u64,
}

impl ObrMeasurement {
    /// Table V's amplification factor:
    /// `fcdn-bcdn` bytes ÷ `bcdn-origin` bytes.
    pub fn amplification_factor(&self) -> f64 {
        if self.server_to_bcdn_bytes == 0 {
            return 0.0;
        }
        self.bcdn_to_fcdn_bytes as f64 / self.server_to_bcdn_bytes as f64
    }

    /// View as a generic measurement (attacker = `bcdn-origin` side).
    pub fn as_amplification(&self) -> AmplificationMeasurement {
        AmplificationMeasurement {
            target: format!("{} → {}", self.fcdn, self.bcdn),
            exploited_case: self.exploited_case.clone(),
            resource_size: 0,
            traffic: TrafficBreakdown {
                attacker_requests: 1,
                attacker_request_bytes: 0,
                attacker_response_bytes: self.server_to_bcdn_bytes,
                victim_requests: 1,
                victim_request_bytes: 0,
                victim_response_bytes: self.bcdn_to_fcdn_bytes,
                attacker_h2_response_bytes: self.server_to_bcdn_bytes,
                victim_h2_response_bytes: self.bcdn_to_fcdn_bytes,
            },
        }
    }
}

/// A configured OBR attack.
///
/// # Example
///
/// ```
/// use rangeamp::attack::ObrAttack;
/// use rangeamp_cdn::Vendor;
///
/// let attack = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai);
/// let report = attack.run();
/// // Table V: Cloudflare→Akamai reaches four orders of parts.
/// assert!(report.n > 10_000);
/// assert!(report.amplification_factor() > 1_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct ObrAttack {
    fcdn: Vendor,
    bcdn: Vendor,
    resource_size: u64,
    n: Option<usize>,
    receive_window: u64,
    bcdn_mitigation: Option<rangeamp_cdn::MitigationConfig>,
}

impl ObrAttack {
    /// Configures the attack with the paper's parameters: a 1 KB target
    /// resource and the maximum `n` the header limits allow.
    pub fn new(fcdn: Vendor, bcdn: Vendor) -> ObrAttack {
        ObrAttack {
            fcdn,
            bcdn,
            resource_size: 1024,
            n: None,
            receive_window: 1024,
            bcdn_mitigation: None,
        }
    }

    /// Overrides the target resource size.
    pub fn resource_size(mut self, size: u64) -> ObrAttack {
        self.resource_size = size;
        self
    }

    /// Uses a fixed `n` instead of the solver's maximum.
    pub fn overlapping_ranges(mut self, n: usize) -> ObrAttack {
        self.n = Some(n);
        self
    }

    /// Applies a mitigation at the BCDN (for the §VI-C ablations).
    pub fn with_bcdn_mitigation(mut self, mitigation: rangeamp_cdn::MitigationConfig) -> ObrAttack {
        self.bcdn_mitigation = Some(mitigation);
        self
    }

    /// The exploited range shape Table II permits against this FCDN.
    pub fn range_case(&self) -> ObrRangeCase {
        match self.fcdn {
            Vendor::Cdn77 => ObrRangeCase::SuffixThenZero,
            Vendor::CdnSun => ObrRangeCase::OneThenZero,
            _ => ObrRangeCase::AllZeroOpen,
        }
    }

    /// The maximum `n` admitted by both CDNs' header limits (§V-C),
    /// accounting for the `Via` line the FCDN adds on the forwarded hop.
    pub fn max_n(&self) -> usize {
        let fcdn_profile = self.fcdn.fcdn_profile();
        let via_value = format!("1.1 {}", fcdn_profile.via_token());
        max_overlapping_ranges_with_hop(
            self.range_case(),
            TARGET_PATH,
            TARGET_HOST,
            &fcdn_profile.limits,
            &self.bcdn.profile().limits,
            &[("Via", via_value.as_str())],
        )
    }

    /// Builds the cascade and runs one attack request.
    pub fn run(&self) -> ObrMeasurement {
        let mut bcdn_profile = self.bcdn.profile();
        if let Some(mitigation) = self.bcdn_mitigation {
            bcdn_profile = bcdn_profile.with_mitigation(mitigation);
        }
        let bed = CascadeTestbed::with_profiles(
            self.fcdn.fcdn_profile(),
            bcdn_profile,
            self.resource_size,
        );
        self.run_on(&bed)
    }

    /// Runs one attack request on an existing cascade.
    pub fn run_on(&self, bed: &CascadeTestbed) -> ObrMeasurement {
        bed.reset_traffic();
        let n = self.n.unwrap_or_else(|| self.max_n()).max(2);
        let case = self.range_case();
        let req = Request::get(TARGET_PATH)
            .header("Host", TARGET_HOST)
            .header("Range", case.header(n).to_string())
            .build();
        bed.request_with_small_window(&req, self.receive_window);
        ObrMeasurement {
            fcdn: self.fcdn.name().to_string(),
            bcdn: self.bcdn.name().to_string(),
            exploited_case: case.describe().to_string(),
            n,
            server_to_bcdn_bytes: bed.bcdn_origin_segment().stats().response_bytes,
            bcdn_to_fcdn_bytes: bed.fcdn_bcdn_segment().stats().response_bytes,
            attacker_bytes: bed.client_segment().stats().response_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_combos_exist() {
        let combos = obr_combos();
        assert_eq!(combos.len(), 11);
        assert!(!combos.contains(&(Vendor::StackPath, Vendor::StackPath)));
        assert!(combos.contains(&(Vendor::Cloudflare, Vendor::Akamai)));
        assert!(combos.contains(&(Vendor::Cdn77, Vendor::Azure)));
    }

    #[test]
    fn case_selection_matches_table_v() {
        assert_eq!(
            ObrAttack::new(Vendor::Cdn77, Vendor::Akamai).range_case(),
            ObrRangeCase::SuffixThenZero
        );
        assert_eq!(
            ObrAttack::new(Vendor::CdnSun, Vendor::Azure).range_case(),
            ObrRangeCase::OneThenZero
        );
        assert_eq!(
            ObrAttack::new(Vendor::Cloudflare, Vendor::StackPath).range_case(),
            ObrRangeCase::AllZeroOpen
        );
    }

    #[test]
    fn azure_bcdn_caps_n_at_64() {
        for fcdn in [
            Vendor::Cdn77,
            Vendor::CdnSun,
            Vendor::Cloudflare,
            Vendor::StackPath,
        ] {
            assert_eq!(ObrAttack::new(fcdn, Vendor::Azure).max_n(), 64, "{fcdn}");
        }
    }

    #[test]
    fn cdn77_akamai_n_matches_paper_scale() {
        // Paper: 5455 (16 KB single-header limit at CDN77 binds).
        let n = ObrAttack::new(Vendor::Cdn77, Vendor::Akamai).max_n();
        assert!((5400..=5500).contains(&n), "got {n}");
    }

    #[test]
    fn cloudflare_akamai_n_matches_paper_scale() {
        // Paper: 10750 (Cloudflare's 32 411-byte budget binds).
        let n = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai).max_n();
        assert!((10_700..=10_850).contains(&n), "got {n}");
    }

    #[test]
    fn small_n_run_amplifies_by_about_n() {
        let report = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai)
            .overlapping_ranges(16)
            .run();
        assert_eq!(report.n, 16);
        let factor = report.amplification_factor();
        assert!(
            factor > 8.0 && factor < 20.0,
            "≈ n expected for a 1 KB resource, got {factor}"
        );
        // Attacker accepted only the receive window.
        assert!(report.attacker_bytes <= 1024);
    }

    #[test]
    fn azure_bcdn_full_run() {
        let report = ObrAttack::new(Vendor::Cdn77, Vendor::Azure).run();
        assert_eq!(report.n, 64);
        let factor = report.amplification_factor();
        // Paper Table V: ≈ 53× for CDN77→Azure.
        assert!(factor > 25.0 && factor < 80.0, "got {factor}");
    }
}
