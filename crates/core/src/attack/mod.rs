//! The RangeAmp attacks (paper §IV).
//!
//! * [`SbrAttack`] — Small Byte Range attack against the origin server
//!   behind one CDN (§IV-B, evaluated in §V-B / Table IV / Fig 6).
//! * [`ObrAttack`] — Overlapping Byte Ranges attack against the
//!   `fcdn-bcdn` link of two cascaded CDNs (§IV-C, evaluated in §V-C /
//!   Table V).
//! * [`FloodExperiment`] — the sustained-attack bandwidth experiment
//!   (§V-D / Fig 7).

mod abort;
mod flood;
mod obr;
mod sbr;

pub use abort::{compare_with_sbr, AbortMeasurement, DefenseComparison, DroppedGetAttack};
pub use flood::{FloodExperiment, FloodReport};
pub use obr::{obr_combos, ObrAttack, ObrMeasurement};
pub use sbr::{exploited_range_case, ExploitedCase, SbrAttack};
