//! The sustained-attack bandwidth experiment (paper §V-D, Fig 7).
//!
//! The paper sends `m` concurrent SBR requests per second for 30 seconds
//! against a 10 MB resource behind Cloudflare and monitors the origin's
//! outgoing bandwidth (1000 Mbps uplink) and the client's incoming
//! bandwidth. With `m ≤ 10` the origin's outgoing bandwidth is
//! proportional to `m`; from `m ≈ 11` it approaches line rate; from
//! `m ≥ 14` the uplink is completely exhausted — while the attacker's
//! incoming bandwidth never exceeds ~500 Kbps.
//!
//! The experiment runs on virtual time: per-request byte counts come from
//! one metered testbed round, then the 30-second schedule is simulated
//! with max-min fair bandwidth sharing on the origin uplink.

use rangeamp_cdn::Vendor;
use rangeamp_net::FlowSim;
use serde::Serialize;

use crate::attack::SbrAttack;
use crate::testbed::{Testbed, TARGET_PATH};

/// Configuration for a Fig 7-style run.
#[derive(Debug, Clone)]
pub struct FloodExperiment {
    /// The abused CDN (the paper uses Cloudflare as the example).
    pub vendor: Vendor,
    /// Target resource size in bytes (paper: 10 MB).
    pub resource_size: u64,
    /// Origin uplink capacity in Mbps (paper: 1000).
    pub origin_uplink_mbps: f64,
    /// Attacker downlink capacity in Mbps (paper: commodity access).
    pub client_downlink_mbps: f64,
    /// Attack duration in seconds (paper: 30).
    pub duration_secs: u64,
    /// Requests per second (the paper's `m`, swept 1..=15).
    pub requests_per_sec: u32,
}

impl FloodExperiment {
    /// The paper's §V-D configuration for a given `m`.
    pub fn paper_config(m: u32) -> FloodExperiment {
        FloodExperiment {
            vendor: Vendor::Cloudflare,
            resource_size: 10 * 1024 * 1024,
            origin_uplink_mbps: 1000.0,
            client_downlink_mbps: 100.0,
            duration_secs: 30,
            requests_per_sec: m,
        }
    }

    /// Runs the experiment on virtual time.
    pub fn run(&self) -> FloodReport {
        // One metered round yields the exact per-request byte costs.
        let bed = Testbed::builder()
            .vendor(self.vendor)
            .resource(TARGET_PATH, self.resource_size)
            .build();
        let probe = SbrAttack::new(self.vendor, self.resource_size).run_on(&bed, 0);
        let origin_bytes_per_request = probe.traffic.victim_response_bytes;
        let client_bytes_per_request = probe.traffic.attacker_response_bytes;

        let mut sim = FlowSim::new(20);
        let uplink = sim.add_link("origin-uplink", self.origin_uplink_mbps);
        let downlink = sim.add_link("client-downlink", self.client_downlink_mbps);
        for second in 0..self.duration_secs {
            for k in 0..self.requests_per_sec {
                // Spread the m requests of each second evenly, like the
                // paper's concurrent senders.
                let offset_ms = second * 1000 + (k as u64 * 1000) / self.requests_per_sec as u64;
                sim.schedule_flow(offset_ms, origin_bytes_per_request, &[uplink]);
                sim.schedule_flow(offset_ms, client_bytes_per_request, &[downlink]);
            }
        }
        // Let queued transfers drain a little past the attack window so
        // saturation tails are visible, as in Fig 7.
        sim.run_until_millis((self.duration_secs + 10) * 1000);
        let mut origin_series = sim.link_throughput_mbps(uplink);
        let mut client_series = sim.link_throughput_mbps(downlink);
        let len = (self.duration_secs + 10) as usize;
        origin_series.resize(len, 0.0);
        client_series.resize(len, 0.0);
        FloodReport {
            requests_per_sec: self.requests_per_sec,
            origin_bytes_per_request,
            client_bytes_per_request,
            origin_outgoing_mbps: origin_series,
            client_incoming_mbps: client_series,
        }
    }
}

/// Result of one flood run: per-second bandwidth series (Fig 7a/7b).
#[derive(Debug, Clone, Serialize)]
pub struct FloodReport {
    /// The `m` used.
    pub requests_per_sec: u32,
    /// Origin-side response bytes per attack request.
    pub origin_bytes_per_request: u64,
    /// Attacker-side response bytes per attack request.
    pub client_bytes_per_request: u64,
    /// Fig 7b: origin outgoing bandwidth per second, Mbps.
    pub origin_outgoing_mbps: Vec<f64>,
    /// Fig 7a: client incoming bandwidth per second, Mbps.
    pub client_incoming_mbps: Vec<f64>,
}

impl FloodReport {
    /// Mean origin outgoing bandwidth during the steady part of the
    /// attack window (seconds 5..25 of a 30-second run).
    pub fn steady_origin_mbps(&self) -> f64 {
        let window: Vec<f64> = self
            .origin_outgoing_mbps
            .iter()
            .copied()
            .skip(5)
            .take(20)
            .collect();
        if window.is_empty() {
            return 0.0;
        }
        window.iter().sum::<f64>() / window.len() as f64
    }

    /// Peak client incoming bandwidth in Kbps (the paper reports it never
    /// exceeds ~500 Kbps).
    pub fn peak_client_kbps(&self) -> f64 {
        self.client_incoming_mbps
            .iter()
            .fold(0.0f64, |acc, &x| acc.max(x))
            * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_m_is_proportional() {
        let r2 = FloodExperiment::paper_config(2).run();
        let r4 = FloodExperiment::paper_config(4).run();
        let ratio = r4.steady_origin_mbps() / r2.steady_origin_mbps();
        assert!(
            (1.7..=2.3).contains(&ratio),
            "m=4 should be ≈2× m=2, got {ratio} ({} vs {})",
            r2.steady_origin_mbps(),
            r4.steady_origin_mbps()
        );
    }

    #[test]
    fn high_m_saturates_the_uplink() {
        let report = FloodExperiment::paper_config(14).run();
        let steady = report.steady_origin_mbps();
        assert!(
            steady > 990.0,
            "m=14 should exhaust 1000 Mbps, got {steady}"
        );
    }

    #[test]
    fn m11_approaches_line_rate() {
        let report = FloodExperiment::paper_config(11).run();
        let steady = report.steady_origin_mbps();
        assert!(
            steady > 900.0,
            "paper: m ≥ 11 is close to 1000 Mbps, got {steady}"
        );
    }

    #[test]
    fn client_incoming_stays_under_500kbps() {
        let report = FloodExperiment::paper_config(15).run();
        let peak = report.peak_client_kbps();
        assert!(peak < 500.0, "paper Fig 7a bound, got {peak} Kbps");
    }
}
