//! Plain-text table rendering for the benchmark harness binaries.
//!
//! Every `table*`/`fig*` binary in `rangeamp-bench` prints its result
//! through [`TextTable`], so regenerated tables read like the paper's.

use std::fmt;

/// A fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut TextTable {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.min(120)))?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, width) in cells.iter().zip(&widths) {
                let pad = width - cell.chars().count();
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(total.min(120)))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a byte count with thousands separators (as the paper prints
/// traffic volumes).
pub fn group_digits(value: u64) -> String {
    let digits = value.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        // `% 3 == 0` rather than `is_multiple_of` keeps the MSRV at 1.82.
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new("Table X", &["CDN", "Factor"]);
        table.row(vec!["Akamai", "43093"]);
        table.row(vec!["G-Core Labs", "43330"]);
        let text = table.to_string();
        assert!(text.contains("Table X"));
        assert!(text.contains("| Akamai      |"));
        assert!(text.contains("| G-Core Labs |"));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        TextTable::new("t", &["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(26214400), "26,214,400");
    }

    #[test]
    fn empty_table_reports_empty() {
        let table = TextTable::new("t", &["a"]);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
    }
}
