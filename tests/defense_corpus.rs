//! Golden detector-verdict fixtures (`tests/corpus/defense-*.txt`):
//! three committed traces — benign-heavy, SBR burst, OBR cascade — are
//! replayed through a fresh [`rangeamp_defense::DefenseLayer`] under the
//! default config on every run, and the rendered verdict stream must
//! match the fixture byte for byte. A threshold, feature-window, or
//! ladder change shows up as a readable line diff; regenerate a fixture
//! by pasting the "full actual stream" section from the failure.

use std::fs;
use std::path::{Path, PathBuf};

use rangeamp_defense::{check_fixture, parse_fixture, VERDICT_SEPARATOR};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn load(name: &str) -> String {
    let path = corpus_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn check(name: &str) -> String {
    let text = load(name);
    check_fixture(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    text
}

/// The expected verdict lines of an already-validated fixture.
fn verdicts(text: &str) -> Vec<String> {
    let (_, expected) = parse_fixture(text).expect("fixture parses");
    assert!(
        text.contains(VERDICT_SEPARATOR) && !expected.is_empty(),
        "fixture must commit a golden verdict section"
    );
    expected
}

#[test]
fn benign_heavy_trace_matches_golden_verdicts() {
    let text = check("defense-benign-heavy.txt");
    // A benign-only mix must never leave the bottom of the ladder.
    for line in verdicts(&text) {
        assert!(
            line.contains("class=benign"),
            "benign trace flagged: {line}"
        );
        assert!(
            line.contains("action=allow"),
            "benign trace enforced: {line}"
        );
    }
}

#[test]
fn sbr_burst_trace_matches_golden_verdicts() {
    let text = check("defense-sbr-burst.txt");
    let lines = verdicts(&text);
    // The burst must be classified as SBR and climb the whole ladder
    // while the interleaved benign client stays untouched.
    assert!(lines
        .iter()
        .any(|l| l.contains("client=mallory") && l.contains("class=sbr-suspect")));
    assert!(lines
        .iter()
        .any(|l| l.contains("client=mallory") && l.contains("action=block")));
    for line in lines.iter().filter(|l| l.contains("client=alice")) {
        assert!(
            line.contains("action=allow"),
            "benign bystander enforced: {line}"
        );
    }
}

#[test]
fn obr_cascade_trace_matches_golden_verdicts() {
    let text = check("defense-obr-cascade.txt");
    let lines = verdicts(&text);
    // Overlap multiplicity flags the very first multi-range request.
    let first_mallory = lines
        .iter()
        .find(|l| l.contains("client=mallory"))
        .expect("attacker appears in trace");
    assert!(
        first_mallory.contains("class=obr-suspect"),
        "OBR shape must be flagged on sight: {first_mallory}"
    );
    assert!(lines
        .iter()
        .any(|l| l.contains("client=mallory") && l.contains("action=block")));
}
