//! Golden behaviour matrix: for every vendor × canonical probe, the
//! exact back-to-origin `Range` sequence is locked. Any profile change
//! that would silently alter a Table I/II behaviour fails here with a
//! precise diff.

use rangeamp::{Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::Vendor;
use rangeamp_http::Request;

const MB: u64 = 1024 * 1024;

/// (vendor, probe range, file size, expected forwarded sequence)
/// `"<none>"` means the Range header was deleted; `"="` means forwarded
/// unchanged.
const MATRIX: &[(&str, &str, u64, &[&str])] = &[
    // ---- bytes=0-0 (the canonical SBR probe) at 1 MB ----
    ("Akamai", "bytes=0-0", MB, &["<none>"]),
    ("Alibaba Cloud", "bytes=0-0", MB, &["="]),
    ("Azure", "bytes=0-0", MB, &["<none>"]),
    ("CDN77", "bytes=0-0", MB, &["<none>"]),
    ("CDNsun", "bytes=0-0", MB, &["<none>"]),
    ("Cloudflare", "bytes=0-0", MB, &["<none>"]),
    ("CloudFront", "bytes=0-0", MB, &["bytes=0-1048575"]),
    ("Fastly", "bytes=0-0", MB, &["<none>"]),
    ("G-Core Labs", "bytes=0-0", MB, &["<none>"]),
    ("Huawei Cloud", "bytes=0-0", MB, &["="]),
    ("KeyCDN", "bytes=0-0", MB, &["="]),
    ("StackPath", "bytes=0-0", MB, &["=", "<none>"]),
    ("Tencent Cloud", "bytes=0-0", MB, &["<none>"]),
    // ---- bytes=-1 (suffix probe) at 1 MB ----
    ("Akamai", "bytes=-1", MB, &["<none>"]),
    ("Alibaba Cloud", "bytes=-1", MB, &["<none>"]),
    ("Azure", "bytes=-1", MB, &["<none>"]),
    ("CDN77", "bytes=-1", MB, &["="]),
    ("CDNsun", "bytes=-1", MB, &["="]),
    ("Cloudflare", "bytes=-1", MB, &["<none>"]),
    ("CloudFront", "bytes=-1", MB, &["="]),
    ("Fastly", "bytes=-1", MB, &["<none>"]),
    ("G-Core Labs", "bytes=-1", MB, &["<none>"]),
    ("Huawei Cloud", "bytes=-1", MB, &["<none>"]),
    ("KeyCDN", "bytes=-1", MB, &["="]),
    ("StackPath", "bytes=-1", MB, &["=", "<none>"]),
    ("Tencent Cloud", "bytes=-1", MB, &["="]),
    // ---- size-conditional behaviours ----
    ("Huawei Cloud", "bytes=0-0", 12 * MB, &["<none>", "<none>"]),
    ("Huawei Cloud", "bytes=-1", 12 * MB, &["="]),
    (
        "Azure",
        "bytes=8388608-8388608",
        25 * MB,
        &["<none>", "bytes=8388608-16777215"],
    ),
    ("Azure", "bytes=0-0", 25 * MB, &["<none>"]),
    ("CDN77", "bytes=1500-1500", MB, &["="]),
    ("CDNsun", "bytes=1-1", MB, &["="]),
    // ---- CloudFront expansion arithmetic ----
    (
        "CloudFront",
        "bytes=0-0,9437184-9437184",
        25 * MB,
        &["bytes=0-10485759"],
    ),
    (
        "CloudFront",
        "bytes=2097152-3145728",
        25 * MB,
        &["bytes=2097152-4194303"],
    ),
    // ---- multi-range forwarding (Table II) at 4 KB ----
    ("CDN77", "bytes=0-,0-,0-", 4096, &["="]),
    ("CDNsun", "bytes=1-,0-,0-", 4096, &["="]),
    ("CDNsun", "bytes=0-,0-,0-", 4096, &["bytes=0-"]),
    ("StackPath", "bytes=0-,0-,0-", 4096, &["="]),
    ("Akamai", "bytes=0-,0-,0-", 4096, &["bytes=0-"]),
    ("Azure", "bytes=0-,0-,0-", 4096, &["bytes=0-"]),
    ("Fastly", "bytes=0-,0-,0-", 4096, &["bytes=0-"]),
];

fn vendor_by_name(name: &str) -> Vendor {
    Vendor::ALL
        .into_iter()
        .find(|v| v.name() == name)
        .unwrap_or_else(|| panic!("unknown vendor {name}"))
}

#[test]
fn forwarded_range_matrix_is_locked() {
    for &(vendor_name, probe, size, expected) in MATRIX {
        let vendor = vendor_by_name(vendor_name);
        let bed = Testbed::builder()
            .vendor(vendor)
            .resource(TARGET_PATH, size)
            .build();
        let req = Request::get(&format!("{TARGET_PATH}?matrix=1"))
            .header("Host", TARGET_HOST)
            .header("Range", probe)
            .build();
        bed.request(&req);
        let forwarded: Vec<String> = bed
            .origin_segment()
            .capture()
            .forwarded_ranges()
            .into_iter()
            .map(|f| match f {
                None => "<none>".to_string(),
                Some(value) if value == probe => "=".to_string(),
                Some(value) => value,
            })
            .collect();
        let expected: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            forwarded, expected,
            "{vendor_name} × {probe:?} @ {} bytes",
            size
        );
    }
}

#[test]
fn matrix_covers_every_vendor() {
    for vendor in Vendor::ALL {
        assert!(
            MATRIX.iter().any(|(name, ..)| *name == vendor.name()),
            "{vendor} missing from the golden matrix"
        );
    }
}
