//! Mitigation integration tests: §VI-C defenses applied over real attack
//! runs, including the defenses CDN vendors actually shipped after
//! disclosure (§VII-A).

use rangeamp::attack::{FloodExperiment, ObrAttack, SbrAttack};
use rangeamp::mitigation::{evaluate_sbr_defenses, origin_rate_limit_admission, Defense};
use rangeamp_cdn::{MitigationConfig, Vendor};

const MB: u64 = 1024 * 1024;

#[test]
fn gcore_slice_fix_reduces_sbr_to_unity() {
    // §VII-A: G-Core "chose to make the 'slice' option enabled by
    // default, which adopts the Laziness policy".
    let fixed = Vendor::GCoreLabs
        .profile()
        .with_mitigation(MitigationConfig {
            force_laziness: true,
            ..MitigationConfig::none()
        });
    let factor = SbrAttack::new(Vendor::GCoreLabs, 10 * MB)
        .with_profile(fixed)
        .run()
        .amplification_factor();
    assert!(factor < 2.0, "slice fix should kill SBR, got {factor:.1}");
}

#[test]
fn cdn77_overlap_detection_kills_obr() {
    // §VII-A: CDN77 "created a detection for overlapping ranges and such
    // requests will be denied".
    let factor = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai)
        .overlapping_ranges(256)
        .with_bcdn_mitigation(MitigationConfig {
            reject_overlapping: true,
            ..MitigationConfig::none()
        })
        .run()
        .amplification_factor();
    assert!(
        factor < 2.0,
        "overlap rejection should kill OBR, got {factor:.1}"
    );
}

#[test]
fn capped_expansion_keeps_caching_but_bounds_amplification() {
    // §VI-C: "it is acceptable to increase the byte range by 8KB".
    let outcomes = evaluate_sbr_defenses(Vendor::Akamai, 10 * MB);
    let baseline = outcomes
        .iter()
        .find(|o| o.defense == Defense::None)
        .expect("baseline present");
    let capped = outcomes
        .iter()
        .find(|o| o.defense == Defense::CappedExpansion8K)
        .expect("capped present");
    assert!(baseline.amplification_factor > 10_000.0);
    assert!(capped.amplification_factor < 20.0);
    // The capped variant still prefetches: origin sends the requested
    // byte plus up to 8 KB, i.e. more than pure laziness would.
    let lazy = outcomes
        .iter()
        .find(|o| o.defense == Defense::Laziness)
        .expect("laziness present");
    assert!(capped.amplification_factor > lazy.amplification_factor);
}

#[test]
fn defenses_do_not_break_legitimate_range_clients() {
    // A video player resuming at an offset must still get correct bytes
    // under every defense.
    for defense in Defense::ALL {
        let profile = Vendor::Cloudflare
            .profile()
            .with_mitigation(defense.config());
        let bed = rangeamp::Testbed::builder()
            .profile(profile)
            .resource(rangeamp::TARGET_PATH, MB)
            .build();
        let req = rangeamp_http::Request::get(&format!("{}?v=1", rangeamp::TARGET_PATH))
            .header("Host", rangeamp::TARGET_HOST)
            .header("Range", "bytes=1000-1999")
            .build();
        let resp = bed.request(&req);
        assert_eq!(
            resp.status(),
            rangeamp_http::StatusCode::PARTIAL_CONTENT,
            "{}",
            defense.name()
        );
        assert_eq!(resp.body().len(), 1000, "{}", defense.name());
        let expected = bed
            .origin()
            .store()
            .get(rangeamp::TARGET_PATH)
            .expect("resource")
            .slice(1000, 1999);
        assert_eq!(
            resp.body().as_bytes(),
            expected.as_bytes(),
            "{}",
            defense.name()
        );
    }
}

#[test]
fn coalesce_defense_still_serves_disjoint_multipart() {
    let profile = Vendor::Akamai.profile().with_mitigation(MitigationConfig {
        coalesce_multi: true,
        ..MitigationConfig::none()
    });
    let bed = rangeamp::Testbed::builder()
        .profile(profile)
        .resource(rangeamp::TARGET_PATH, 100_000)
        .build();
    let req = rangeamp_http::Request::get(&format!("{}?v=2", rangeamp::TARGET_PATH))
        .header("Host", rangeamp::TARGET_HOST)
        .header("Range", "bytes=0-9,90000-90009")
        .build();
    let resp = bed.request(&req);
    assert_eq!(resp.status(), rangeamp_http::StatusCode::PARTIAL_CONTENT);
    let content_type = resp.headers().get("content-type").expect("present");
    assert!(content_type.starts_with("multipart/byteranges"));
}

#[test]
fn origin_rate_limiting_is_weak_against_distributed_egress() {
    // §VI-C server side: "attack requests ... come from widely
    // distributed CDN nodes. It is difficult for the origin server to
    // defend against it effectively."
    let concentrated = origin_rate_limit_admission(2.0, 1, 30, 10);
    let distributed = origin_rate_limit_admission(2.0, 300, 1, 10);
    assert!(concentrated < 0.25, "got {concentrated}");
    assert!(distributed > 0.95, "got {distributed}");
}

#[test]
fn fig7_saturation_holds_for_every_vendor() {
    // §V-D: "We perform the above experiment on all 13 CDNs. As
    // expected, the experimental results are similar."
    for vendor in rangeamp_cdn::Vendor::ALL {
        let mut experiment = FloodExperiment::paper_config(14);
        experiment.vendor = vendor;
        let report = experiment.run();
        let steady = report.steady_origin_mbps();
        assert!(
            steady > 900.0,
            "{vendor}: m=14 should approach line rate, got {steady:.1} Mbps"
        );
        assert!(
            report.peak_client_kbps() < 500.0,
            "{vendor}: client bound exceeded"
        );
    }
}

#[test]
fn laziness_defense_prevents_fig7_saturation() {
    // Re-run the Fig 7 m=14 configuration against a mitigated CDN: with
    // Laziness the origin only ships what the attacker pays for, so its
    // uplink stays idle.
    let mut experiment = FloodExperiment::paper_config(14);
    experiment.vendor = Vendor::Cloudflare;
    let vulnerable = experiment.run();
    assert!(vulnerable.steady_origin_mbps() > 990.0);

    // Mitigated run: per-request origin bytes collapse to ~the client
    // bytes, so even 14 req/s is a trickle.
    let profile = Vendor::Cloudflare
        .profile()
        .with_mitigation(MitigationConfig {
            force_laziness: true,
            ..MitigationConfig::none()
        });
    let probe = SbrAttack::new(Vendor::Cloudflare, 10 * MB)
        .with_profile(profile)
        .run();
    let per_request_origin = probe.traffic.victim_response_bytes;
    let demand_mbps = per_request_origin as f64 * 14.0 * 8.0 / 1_000_000.0;
    assert!(
        demand_mbps < 1.0,
        "mitigated demand should be <1 Mbps, got {demand_mbps:.3}"
    );
}
