//! Thread-safety integration tests: the testbed components are `Send +
//! Sync` and behave correctly under concurrent attack streams (the paper's
//! attacker "continuously and concurrently send[s] a certain number of
//! range requests", §V-D).

use crossbeam::thread;

use rangeamp::attack::SbrAttack;
use rangeamp::{CascadeTestbed, Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::{CdnFleet, EdgeNode, IngressStrategy, Vendor};
use rangeamp_http::{Request, StatusCode};
use rangeamp_net::Segment;

const MB: u64 = 1024 * 1024;

#[test]
fn core_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Testbed>();
    assert_send_sync::<CascadeTestbed>();
    assert_send_sync::<EdgeNode>();
    assert_send_sync::<CdnFleet>();
    assert_send_sync::<Segment>();
}

#[test]
fn concurrent_attack_streams_account_exactly() {
    let bed = Testbed::builder()
        .vendor(Vendor::Akamai)
        .resource(TARGET_PATH, MB)
        .build();
    let threads = 8usize;
    let rounds_per_thread = 10u64;

    thread::scope(|scope| {
        for t in 0..threads {
            let bed = &bed;
            scope.spawn(move |_| {
                for r in 0..rounds_per_thread {
                    let req = Request::get(&format!("{TARGET_PATH}?t={t}&r={r}"))
                        .header("Host", TARGET_HOST)
                        .header("Range", "bytes=0-0")
                        .build();
                    let resp = bed.request(&req);
                    assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
                    assert_eq!(resp.body().len(), 1);
                }
            });
        }
    })
    .expect("no thread panicked");

    let total = threads as u64 * rounds_per_thread;
    let client = bed.client_segment().stats();
    let origin = bed.origin_segment().stats();
    assert_eq!(client.requests, total, "no request lost or double-counted");
    assert_eq!(origin.requests, total, "every busted URL misses");
    assert!(origin.response_bytes >= total * MB);
}

#[test]
fn concurrent_requests_to_one_cache_key_stay_consistent() {
    let bed = Testbed::builder()
        .vendor(Vendor::Cloudflare)
        .resource(TARGET_PATH, 100_000)
        .build();
    let req = Request::get(&format!("{TARGET_PATH}?shared=1"))
        .header("Host", TARGET_HOST)
        .header("Range", "bytes=10-19")
        .build();

    thread::scope(|scope| {
        for _ in 0..8 {
            let bed = &bed;
            let req = &req;
            scope.spawn(move |_| {
                for _ in 0..5 {
                    let resp = bed.request(req);
                    assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
                    assert_eq!(resp.body().len(), 10);
                }
            });
        }
    })
    .expect("no thread panicked");

    // Without request collapsing, several threads may race the first
    // miss, but once cached no further origin fetches occur and all
    // bodies were correct.
    let (hits, misses) = bed.edge().cache().stats();
    assert!(hits + misses == 40);
    assert!(
        hits >= 40 - 8,
        "at most one miss per racing thread: {hits} hits"
    );
}

#[test]
fn fleet_round_robin_is_race_free() {
    let mut store = rangeamp_origin::ResourceStore::new();
    store.add_synthetic(TARGET_PATH, MB, "application/octet-stream");
    let origin = std::sync::Arc::new(rangeamp_origin::OriginServer::new(store));
    let fleet = CdnFleet::new(
        Vendor::Fastly.profile(),
        4,
        origin,
        IngressStrategy::RoundRobin,
    );

    thread::scope(|scope| {
        for t in 0..4 {
            let fleet = &fleet;
            scope.spawn(move |_| {
                for r in 0..25 {
                    let req = Request::get(&format!("{TARGET_PATH}?t={t}&r={r}"))
                        .header("Host", TARGET_HOST)
                        .header("Range", "bytes=0-0")
                        .build();
                    let (_, resp) = fleet.handle(&req);
                    assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
                }
            });
        }
    })
    .expect("no thread panicked");

    let total = fleet.total_origin_stats();
    assert_eq!(total.requests, 100);
    // Round robin spreads exactly under the atomic counter.
    for stats in fleet.per_node_stats() {
        assert_eq!(stats.requests, 25);
    }
}

#[test]
fn parallel_sbr_attacks_against_different_vendors() {
    thread::scope(|scope| {
        for vendor in Vendor::ALL {
            scope.spawn(move |_| {
                let factor = SbrAttack::new(vendor, MB).run().amplification_factor();
                assert!(factor > 500.0, "{vendor}: {factor}");
            });
        }
    })
    .expect("no thread panicked");
}
