//! End-to-end SBR integration tests: every vendor, every paper condition,
//! factors within tolerance of Table IV.

use rangeamp::attack::{exploited_range_case, SbrAttack};
use rangeamp::{Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::Vendor;
use rangeamp_http::{Request, StatusCode};

const MB: u64 = 1024 * 1024;

/// Paper Table IV at 1 MB (vendor, factor).
const TABLE4_1MB: [(&str, f64); 13] = [
    ("Akamai", 1707.0),
    ("Alibaba Cloud", 1056.0),
    ("Azure", 1401.0),
    ("CDN77", 1612.0),
    ("CDNsun", 1578.0),
    ("Cloudflare", 1282.0),
    ("CloudFront", 1356.0),
    ("Fastly", 1286.0),
    ("G-Core Labs", 1763.0),
    ("Huawei Cloud", 1465.0),
    ("KeyCDN", 724.0),
    ("StackPath", 1297.0),
    ("Tencent Cloud", 1308.0),
];

#[test]
fn every_vendor_amplifies_within_tolerance_of_table4_at_1mb() {
    for (name, paper_factor) in TABLE4_1MB {
        let vendor = Vendor::ALL
            .into_iter()
            .find(|v| v.name() == name)
            .expect("vendor exists");
        let measured = SbrAttack::new(vendor, MB).run().amplification_factor();
        let ratio = measured / paper_factor;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "{name}: measured {measured:.0} vs paper {paper_factor:.0} (ratio {ratio:.3})"
        );
    }
}

#[test]
fn amplification_is_proportional_to_resource_size() {
    // Fig 6a: "the amplification factor is basically proportional to the
    // target resource size" (Deletion-policy vendors).
    for vendor in [Vendor::Akamai, Vendor::Cloudflare, Vendor::TencentCloud] {
        let f1 = SbrAttack::new(vendor, MB).run().amplification_factor();
        let f4 = SbrAttack::new(vendor, 4 * MB).run().amplification_factor();
        let ratio = f4 / f1;
        assert!(
            (3.6..=4.4).contains(&ratio),
            "{vendor}: {f1:.0} → {f4:.0} (ratio {ratio:.2}, expected ≈4)"
        );
    }
}

#[test]
fn azure_amplification_plateaus_past_16mb() {
    // Fig 6a: "when the target resource exceeds 16MB, the amplification
    // factor of Azure will stay unchanged".
    let f16 = SbrAttack::new(Vendor::Azure, 16 * MB)
        .run()
        .amplification_factor();
    let f25 = SbrAttack::new(Vendor::Azure, 25 * MB)
        .run()
        .amplification_factor();
    let growth = f25 / f16;
    assert!(
        growth < 1.1,
        "Azure should plateau: {f16:.0} at 16 MB vs {f25:.0} at 25 MB"
    );
}

#[test]
fn cloudfront_amplification_plateaus_past_10mb() {
    // Fig 6a: "when the target resource exceeds 10MB, the amplification
    // factor of CloudFront no longer increases".
    let f10 = SbrAttack::new(Vendor::CloudFront, 10 * MB)
        .run()
        .amplification_factor();
    let f25 = SbrAttack::new(Vendor::CloudFront, 25 * MB)
        .run()
        .amplification_factor();
    let growth = f25 / f10;
    assert!(
        (0.9..=1.1).contains(&growth),
        "CloudFront should plateau: {f10:.0} at 10 MB vs {f25:.0} at 25 MB"
    );
}

#[test]
fn akamai_and_gcore_lead_the_field_at_25mb() {
    // §V-B: "Akamai and G-Core Labs insert fewer headers to the response,
    // causing their amplification factors to be larger than other CDNs".
    let leaders: f64 = [Vendor::Akamai, Vendor::GCoreLabs]
        .iter()
        .map(|v| SbrAttack::new(*v, 25 * MB).run().amplification_factor())
        .fold(f64::INFINITY, f64::min);
    for vendor in Vendor::ALL {
        if matches!(vendor, Vendor::Akamai | Vendor::GCoreLabs) {
            continue;
        }
        let factor = SbrAttack::new(vendor, 25 * MB).run().amplification_factor();
        assert!(
            factor < leaders,
            "{vendor} ({factor:.0}) should trail Akamai/G-Core ({leaders:.0})"
        );
    }
}

#[test]
fn keycdn_produces_the_largest_origin_traffic() {
    // Fig 6c: "KeyCDN generates the largest response traffic" because the
    // attack sends each request twice.
    let keycdn = SbrAttack::new(Vendor::KeyCdn, 10 * MB)
        .run()
        .traffic
        .victim_response_bytes;
    for vendor in [
        Vendor::Akamai,
        Vendor::Cloudflare,
        Vendor::Fastly,
        Vendor::TencentCloud,
    ] {
        let other = SbrAttack::new(vendor, 10 * MB)
            .run()
            .traffic
            .victim_response_bytes;
        assert!(
            keycdn > other,
            "KeyCDN ({keycdn}) should out-traffic {vendor} ({other})"
        );
    }
}

#[test]
fn client_side_traffic_stays_under_1500_bytes_per_response() {
    // Fig 6b: "response traffic in client-cdn connection is no more than
    // 1500 bytes".
    for vendor in Vendor::ALL {
        let report = SbrAttack::new(vendor, 25 * MB).run();
        let per_response =
            report.traffic.attacker_response_bytes / report.traffic.attacker_requests.max(1);
        assert!(
            per_response <= 1500,
            "{vendor}: {per_response} bytes per client response"
        );
    }
}

#[test]
fn huawei_switches_exploited_case_at_10mb() {
    assert_eq!(
        exploited_range_case(Vendor::HuaweiCloud, 9 * MB).description,
        "bytes=-1"
    );
    assert_eq!(
        exploited_range_case(Vendor::HuaweiCloud, 10 * MB).description,
        "bytes=0-0"
    );
    // Both regimes actually amplify.
    assert!(
        SbrAttack::new(Vendor::HuaweiCloud, 9 * MB)
            .run()
            .amplification_factor()
            > 1000.0
    );
    assert!(
        SbrAttack::new(Vendor::HuaweiCloud, 12 * MB)
            .run()
            .amplification_factor()
            > 1000.0
    );
}

#[test]
fn azure_origin_traffic_caps_near_16mb() {
    // §V-A item 2: for files over 16 MB both Azure connections carry
    // ≈ 8 MB each.
    let report = SbrAttack::new(Vendor::Azure, 25 * MB).run();
    let origin = report.traffic.victim_response_bytes;
    assert!(
        origin > 16 * MB && origin < 17 * MB,
        "Azure origin traffic should cap near 16 MB, got {origin}"
    );
    assert_eq!(
        report.traffic.victim_requests, 2,
        "two back-to-origin connections"
    );
}

#[test]
fn repeated_attack_rounds_stay_effective_despite_caching() {
    // §II-A: random query strings force a cache miss every time.
    let bed = Testbed::builder()
        .vendor(Vendor::Cloudflare)
        .resource(TARGET_PATH, MB)
        .build();
    let attack = SbrAttack::new(Vendor::Cloudflare, MB);
    for round in 0..10 {
        let factor = attack.run_on(&bed, round).amplification_factor();
        assert!(factor > 1000.0, "round {round}: factor {factor:.0}");
    }
}

#[test]
fn without_cache_busting_the_second_request_is_free() {
    let bed = Testbed::builder()
        .vendor(Vendor::Akamai)
        .resource(TARGET_PATH, MB)
        .build();
    let req = Request::get(&format!("{TARGET_PATH}?fixed=1"))
        .header("Host", TARGET_HOST)
        .header("Range", "bytes=0-0")
        .build();
    let first = bed.request(&req);
    assert_eq!(first.status(), StatusCode::PARTIAL_CONTENT);
    let after_first = bed.origin_segment().stats().response_bytes;
    let second = bed.request(&req);
    assert_eq!(second.status(), StatusCode::PARTIAL_CONTENT);
    assert_eq!(
        bed.origin_segment().stats().response_bytes,
        after_first,
        "cache hit must not touch the origin"
    );
}

#[test]
fn sbr_response_bodies_are_correct_despite_amplification() {
    // The attack is invisible to the client: it still gets exactly the
    // bytes it asked for.
    for vendor in Vendor::ALL {
        let bed = Testbed::builder()
            .vendor(vendor)
            .resource(TARGET_PATH, MB)
            .build();
        let req = Request::get(&format!("{TARGET_PATH}?check=1"))
            .header("Host", TARGET_HOST)
            .header("Range", "bytes=100-107")
            .build();
        let resp = bed.request(&req);
        assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT, "{vendor}");
        let expected = bed
            .origin()
            .store()
            .get(TARGET_PATH)
            .expect("resource exists")
            .slice(100, 107);
        assert_eq!(resp.body().as_bytes(), expected.as_bytes(), "{vendor}");
    }
}
