//! Replays the committed conformance corpus (`tests/corpus/`) through
//! every oracle on each `cargo test` run, and smoke-tests the fuzz
//! driver's determinism and bug-detection end to end.

use std::path::Path;

use rangeamp::conformance::{
    check_entry, check_pipeline_with_override, corpus, run_fuzz, shrink, ConformanceEnv,
    CorpusEntry, FuzzCase, FuzzConfig, IfRangeKind,
};
use rangeamp::Executor;
use rangeamp_cdn::{MitigationConfig, Vendor};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn every_corpus_entry_passes_all_oracles() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus directory loads");
    assert!(
        entries.len() >= 10,
        "corpus unexpectedly small: {} entries",
        entries.len()
    );
    let env = ConformanceEnv::new();
    for (name, entry) in &entries {
        let report = check_entry(&env, entry);
        assert!(
            report.violations.is_empty(),
            "{name}: {:#?}",
            report.violations
        );
    }
}

#[test]
fn fuzz_digest_is_thread_invariant() {
    let config = FuzzConfig {
        seed: 42,
        cases: 200,
        ..FuzzConfig::default()
    };
    let one = run_fuzz(&config, &Executor::new(1));
    let two = run_fuzz(&config, &Executor::new(2));
    assert_eq!(one.violations, 0, "{:#?}", one.findings);
    assert_eq!(one.digest, two.digest);
    assert_eq!(one.probes, two.probes);
    assert_eq!(
        (one.pipeline_cases, one.wire_cases),
        (two.pipeline_cases, two.wire_cases)
    );
}

#[test]
fn injected_vendor_bug_is_caught_and_shrinks_to_a_minimal_repro() {
    // Hand-inject a policy bug: flip Akamai from Deletion to Laziness.
    // The differential oracle must catch it, and the shrinker must reduce
    // an arbitrary dressed-up case to a minimal one that still fires.
    let env = ConformanceEnv::new();
    let bugged = Vendor::Akamai.profile().with_mitigation(MitigationConfig {
        force_laziness: true,
        ..MitigationConfig::none()
    });
    let original = FuzzCase {
        size: 9 * 1024 * 1024,
        range: "bytes=100-200".to_string(),
        expect: None,
        if_range: IfRangeKind::MatchingEtag,
        pad: 33,
    };
    let report = check_pipeline_with_override(&env, &original, Some((Vendor::Akamai, &bugged)));
    let violation = report
        .violations
        .iter()
        .find(|v| v.oracle == "policy-model" && v.vendor == Some(Vendor::Akamai))
        .expect("the flipped policy must trip the model oracle")
        .clone();

    // Shrinking against the *stock* pipeline cannot reproduce an injected
    // bug, so re-check candidates under the same override via a wrapper
    // env is not available; instead shrink directly on a case that also
    // fails against stock — here we verify the shrinker contract on a
    // grammar violation instead.
    let broken = CorpusEntry::Pipeline(FuzzCase {
        size: 12 * 1024 * 1024,
        // Claimed to parse, actually rejected — a deterministic
        // grammar-oracle violation reproducible at any size.
        range: "bytes=99-12,junk".to_string(),
        expect: Some(rangeamp::http::range::ParseExpectation::Parses),
        if_range: IfRangeKind::StaleDate,
        pad: 512,
    });
    let grammar_violation = check_entry(&env, &broken)
        .violations
        .iter()
        .find(|v| v.oracle == "grammar")
        .expect("mislabelled expectation fires the grammar oracle")
        .clone();
    let minimized = shrink(&env, &broken, &grammar_violation);
    let CorpusEntry::Pipeline(min_case) = &minimized else {
        panic!("pipeline entries shrink to pipeline entries");
    };
    assert_eq!(min_case.size, 1, "shrinker should reach the smallest size");
    assert_eq!(min_case.if_range, IfRangeKind::None);
    assert_eq!(min_case.pad, 0);
    assert!(
        min_case.range.len() < broken_range_len(&broken),
        "range should get shorter: {:?}",
        min_case.range
    );
    // The minimised case still fires the same oracle.
    let still = check_entry(&env, &minimized);
    assert!(still.violations.iter().any(|v| v.oracle == "grammar"));

    // And the injected-bug violation itself names the bug precisely.
    assert!(violation.detail.contains("expected"));
}

fn broken_range_len(entry: &CorpusEntry) -> usize {
    match entry {
        CorpusEntry::Pipeline(c) => c.range.len(),
        CorpusEntry::Wire(w) => w.raw.len(),
    }
}
