//! RFC 7233 conformance of the HTTP substrate and the origin server,
//! including the paper's Fig 2 worked examples.

use rangeamp_http::multipart;
use rangeamp_http::range::{ByteRangeSpec, ContentRange, RangeHeader, ResolvedRange};
use rangeamp_http::{wire, Request, StatusCode};
use rangeamp_origin::{OriginConfig, OriginServer, ResourceStore};

fn origin_with(path: &str, size: u64) -> OriginServer {
    let mut store = ResourceStore::new();
    store.add_synthetic(path, size, "image/jpeg");
    OriginServer::new(store)
}

#[test]
fn fig2a_single_range_request_round_trips() {
    let raw = b"GET /1KB.jpg HTTP/1.1\r\nHost: example.com\r\nRange: bytes=0-0\r\n\r\n";
    let req = wire::decode_request(raw).expect("valid request");
    assert_eq!(req.uri().path(), "/1KB.jpg");
    let header =
        RangeHeader::parse(req.headers().get("range").expect("present")).expect("valid range");
    assert_eq!(
        header.specs(),
        &[ByteRangeSpec::FromTo { first: 0, last: 0 }]
    );
    assert_eq!(wire::encode_request(&req), raw);
}

#[test]
fn fig2c_single_part_206_shape() {
    let origin = origin_with("/1KB.jpg", 1000);
    let req = Request::get("/1KB.jpg")
        .header("Host", "example.com")
        .header("Range", "bytes=0-0")
        .build();
    let resp = origin.handle(&req);
    assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
    assert_eq!(resp.headers().get("content-length"), Some("1"));
    assert_eq!(resp.headers().get("accept-ranges"), Some("bytes"));
    assert_eq!(resp.headers().get("content-range"), Some("bytes 0-0/1000"));
    assert_eq!(resp.headers().get("content-type"), Some("image/jpeg"));
}

#[test]
fn fig2d_multipart_206_shape() {
    let origin = origin_with("/1KB.jpg", 1000);
    let req = Request::get("/1KB.jpg")
        .header("Host", "example.com")
        .header("Range", "bytes=1-1,-2")
        .build();
    let resp = origin.handle(&req);
    assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
    let content_type = resp.headers().get("content-type").expect("present");
    assert!(content_type.starts_with("multipart/byteranges; boundary="));
    // "it must not directly contain a Content-Range header, which will be
    // sent in each part instead" (paper §II-B).
    assert_eq!(resp.headers().get("content-range"), None);

    let boundary = content_type.split("boundary=").nth(1).expect("boundary");
    let parts = multipart::parse(resp.body().as_bytes(), boundary).expect("well-formed");
    assert_eq!(parts.len(), 2);
    assert_eq!(
        parts[0].content_range,
        ContentRange::Satisfied {
            range: ResolvedRange { first: 1, last: 1 },
            complete_length: 1000
        }
    );
    assert_eq!(
        parts[1].content_range,
        ContentRange::Satisfied {
            range: ResolvedRange {
                first: 998,
                last: 999
            },
            complete_length: 1000
        }
    );
    assert_eq!(parts[0].content_type, "image/jpeg");
}

#[test]
fn servers_without_range_support_return_200_and_no_accept_ranges() {
    // Paper §II-B behaviour 1.
    let mut store = ResourceStore::new();
    store.add_synthetic("/f.bin", 1000, "x/y");
    let origin = OriginServer::with_config(store, OriginConfig::ranges_disabled());
    let req = Request::get("/f.bin").header("Range", "bytes=0-0").build();
    let resp = origin.handle(&req);
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.body().len(), 1000);
    assert_eq!(resp.headers().get("accept-ranges"), None);
}

#[test]
fn out_of_bounds_range_returns_416() {
    // Paper §II-B behaviour 3.
    let origin = origin_with("/f.jpg", 1000);
    let req = Request::get("/f.jpg")
        .header("Range", "bytes=1000-1001")
        .build();
    let resp = origin.handle(&req);
    assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE);
    assert_eq!(resp.headers().get("content-range"), Some("bytes */1000"));
}

#[test]
fn range_header_abnf_matrix() {
    // RFC 7233 §2.1 grammar coverage.
    let valid = [
        ("bytes=0-499", 1),
        ("bytes=500-999", 1),
        ("bytes=-500", 1),
        ("bytes=9500-", 1),
        ("bytes=0-0,-1", 2),
        ("bytes=500-600,601-999", 2),
        ("bytes=500-700,601-999", 2),
        ("bytes=0-,0-,0-,0-,0-", 5),
    ];
    for (text, count) in valid {
        let header = RangeHeader::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(header.specs().len(), count, "{text}");
    }
    let invalid = [
        "bytes=",
        "bytes=-",
        "bytes=a-b",
        "bytes=2-1",
        "pages=1-2",
        "0-499",
    ];
    for text in invalid {
        assert!(
            RangeHeader::parse(text).is_err(),
            "{text} should be rejected"
        );
    }
}

#[test]
fn rfc7233_satisfiability_rules() {
    // "if the last-byte-pos value is absent, or if the value is greater
    // than or equal to the current length of the representation data, the
    // byte range is interpreted as the remainder of the representation".
    let spec = ByteRangeSpec::FromTo {
        first: 500,
        last: u64::MAX,
    };
    assert_eq!(
        spec.resolve(1000),
        Some(ResolvedRange {
            first: 500,
            last: 999
        })
    );
    // Suffix longer than the representation selects all of it.
    assert_eq!(
        ByteRangeSpec::Suffix { len: 5000 }.resolve(1000),
        Some(ResolvedRange {
            first: 0,
            last: 999
        })
    );
    // A suffix of zero length is unsatisfiable.
    assert_eq!(ByteRangeSpec::Suffix { len: 0 }.resolve(1000), None);
}

#[test]
fn multipart_payload_sizes_are_exactly_predictable() {
    // The OBR max-n solver relies on encoded_len agreeing with build().
    let body = rangeamp_http::Body::from(vec![7u8; 1024]);
    for n in [1usize, 2, 64, 500] {
        let mut builder = multipart::MultipartBuilder::new("application/octet-stream", 1024);
        for _ in 0..n {
            builder = builder.part(
                ResolvedRange {
                    first: 0,
                    last: 1023,
                },
                body.clone(),
            );
        }
        assert_eq!(builder.encoded_len(), builder.build().len(), "n = {n}");
    }
}

#[test]
fn apache_killer_shape_is_neutralized_by_default_origin() {
    // CVE-2011-3192: hundreds of overlapping ranges. The Apache-like
    // origin (post-fix defaults) ignores the header and returns 200.
    let origin = origin_with("/f.jpg", 10_000);
    let specs: Vec<String> = (0..300).map(|i| format!("{}-{}", i, i + 5)).collect();
    let req = Request::get("/f.jpg")
        .header("Range", format!("bytes={}", specs.join(",")))
        .build();
    let resp = origin.handle(&req);
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.body().len(), 10_000);
}

#[test]
fn wire_round_trip_preserves_everything() {
    let req = Request::get("/path/to/file.bin?a=1&b=2")
        .header("Host", "victim.example")
        .header("Range", "bytes=0-0,5-,-3")
        .header("User-Agent", "rangeamp-testbed/0.1")
        .header("X-Custom", "value with spaces")
        .build();
    let parsed = wire::decode_request(&req.to_wire_bytes()).expect("round trip");
    assert_eq!(parsed, req);
    assert_eq!(parsed.wire_len(), req.wire_len());
}

#[test]
fn malformed_range_headers_are_ignored_end_to_end() {
    // RFC 7233 §3.1: "An origin server MUST ignore a Range header field
    // that contains a range unit it does not understand" — and a header
    // that fails the byte-ranges grammar is no Range header at all. Each
    // of these must produce a plain 200 with the full representation,
    // never a 416 or a partial reply.
    let origin = origin_with("/f.bin", 4096);
    for malformed in [
        "bits=0-1",
        "bytes=5-2",
        "bytes=-",
        "bytes=--1",
        "bytes=0--5",
    ] {
        assert!(
            RangeHeader::parse(malformed).is_err(),
            "{malformed} must be rejected by the parser"
        );
        let req = Request::get("/f.bin")
            .header("Host", "example.com")
            .header("Range", malformed)
            .build();
        let resp = origin.handle(&req);
        assert_eq!(resp.status(), StatusCode::OK, "{malformed}");
        assert_eq!(resp.body().len(), 4096, "{malformed}");
        assert_eq!(resp.headers().get("content-range"), None, "{malformed}");
    }
}

#[test]
fn u64_overflow_offsets_are_rejected_not_wrapped() {
    // The largest representable offsets stay valid...
    let max = u64::MAX;
    let edge = RangeHeader::parse(&format!("bytes=0-{max}")).expect("u64::MAX last is valid");
    assert_eq!(
        edge.specs(),
        &[ByteRangeSpec::FromTo {
            first: 0,
            last: max
        }]
    );
    assert!(RangeHeader::parse(&format!("bytes={max}-")).is_ok());
    assert!(RangeHeader::parse(&format!("bytes=-{max}")).is_ok());
    // ...and one past them must fail at parse time (a wrap to small
    // offsets would silently turn a rejection into a satisfiable range).
    for overflow in [
        "bytes=18446744073709551616-",
        "bytes=0-18446744073709551616",
        "bytes=-18446744073709551616",
        "bytes=18446744073709551616-18446744073709551617",
        "bytes=99999999999999999999999999-",
    ] {
        assert!(
            RangeHeader::parse(overflow).is_err(),
            "{overflow} should be rejected"
        );
        let origin = origin_with("/f.bin", 100);
        let req = Request::get("/f.bin")
            .header("Host", "example.com")
            .header("Range", overflow)
            .build();
        let resp = origin.handle(&req);
        assert_eq!(resp.status(), StatusCode::OK, "{overflow}");
        assert_eq!(resp.body().len(), 100, "{overflow}");
    }
}
