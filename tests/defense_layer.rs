//! Safety property of the online defense (DESIGN.md §12): attaching a
//! [`DefenseLayer`] to the victim-facing edge never *increases* any
//! segment's amplification. Both twins replay the identical virtual-time
//! request stream — mixed benign archetypes plus the attacker — so the
//! client-side request bytes match exactly and per-segment amplification
//! (segment response bytes over client request bytes) is monotone iff
//! the per-segment response bytes are. Checked exhaustively for all 13
//! vendor profiles under SBR and all 11 FCDN→BCDN combos under OBR, and
//! for the degenerate benign-only stream, where the defense must be a
//! byte-exact no-op.

use std::sync::Arc;

use rangeamp::attack::{exploited_range_case, obr_combos, ObrAttack};
use rangeamp::executor::splitmix64;
use rangeamp::workload::{BenignClient, WorkloadGenerator};
use rangeamp::{CascadeTestbed, Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::{Vendor, CLIENT_ID_HEADER};
use rangeamp_defense::{DefenseLayer, EnforceConfig};
use rangeamp_http::Request;

const MB: u64 = 1024 * 1024;
/// Attack rounds per run; enough to climb the whole enforcement ladder
/// (block pins after 16 suspect verdicts under the default config).
const ROUNDS: u64 = 24;
const STEP_MS: u64 = 500;
const ATTACKER: &str = "mallory";

/// Per-segment `(label, request_bytes, response_bytes)` snapshots.
type SegmentBytes = Vec<(&'static str, u64, u64)>;

fn advance_to(clock: &rangeamp_net::SharedClock, at_ms: u64) {
    let now = clock.now_millis();
    if at_ms > now {
        clock.advance_millis(at_ms - now);
    }
}

fn snapshot(segments: &[(&'static str, &rangeamp_net::Segment)]) -> SegmentBytes {
    segments
        .iter()
        .map(|(label, segment)| {
            let stats = segment.stats();
            (*label, stats.request_bytes, stats.response_bytes)
        })
        .collect()
}

/// One benign request per round, cycling through the four §II-B
/// archetypes under distinct client ids, mirroring `defense_eval`.
fn benign_round(generator: &mut WorkloadGenerator, round: u64) -> Request {
    let client = BenignClient::ALL[(round % BenignClient::ALL.len() as u64) as usize];
    let id = match client {
        BenignClient::FullDownload => "alice",
        BenignClient::ResumeFromBreakpoint => "bob",
        BenignClient::MediaSeek => "carol",
        BenignClient::MultiThreadDownload => "dave",
    };
    generator.benign(client).with_client_id(id).request
}

/// Replays the SBR schedule against one vendor and snapshots both
/// segments. `attack: false` drops the attacker from the stream.
fn drive_sbr(vendor: Vendor, defense: Option<Arc<DefenseLayer>>, attack: bool) -> SegmentBytes {
    let mut builder = Testbed::builder().vendor(vendor).resource(TARGET_PATH, MB);
    if let Some(layer) = defense {
        builder = builder.defense(layer);
    }
    let bed = builder.build();
    let clock = bed.edge().resilience().clock().clone();
    let mut generator = WorkloadGenerator::new(11, MB);
    for round in 0..ROUNDS {
        advance_to(&clock, round * STEP_MS);
        bed.request(&benign_round(&mut generator, round));
        if !attack {
            continue;
        }
        let case = exploited_range_case(vendor, MB);
        let rnd = splitmix64(0xD5 ^ round.wrapping_mul(0x9E37));
        let uri = format!("{TARGET_PATH}?rnd={rnd:016x}");
        for range in &case.ranges {
            let req = Request::get(&uri)
                .header("Host", TARGET_HOST)
                .header(CLIENT_ID_HEADER, ATTACKER)
                .header("Range", range.to_string())
                .build();
            bed.request(&req);
        }
    }
    snapshot(&[
        ("client-cdn", bed.client_segment()),
        ("cdn-origin", bed.origin_segment()),
    ])
}

/// Replays the OBR schedule against one cascade and snapshots all three
/// segments; the defense sits on the FCDN as in `defense_eval`.
fn drive_obr(
    fcdn: Vendor,
    bcdn: Vendor,
    defense: Option<Arc<DefenseLayer>>,
    attack: bool,
) -> SegmentBytes {
    let size = 1024;
    let bed = match defense {
        Some(layer) => {
            CascadeTestbed::with_profiles_defense(fcdn.fcdn_profile(), bcdn.profile(), size, layer)
        }
        None => CascadeTestbed::with_profiles(fcdn.fcdn_profile(), bcdn.profile(), size),
    };
    let clock = bed.fcdn().resilience().clock().clone();
    let mut generator = WorkloadGenerator::new(11, size);
    let obr = ObrAttack::new(fcdn, bcdn);
    let n = 32usize.min(obr.max_n()).max(2);
    for round in 0..ROUNDS {
        advance_to(&clock, round * STEP_MS);
        bed.request(&benign_round(&mut generator, round));
        if !attack {
            continue;
        }
        let rnd = splitmix64(0xD5 ^ round.wrapping_mul(0x9E37));
        let uri = format!("{TARGET_PATH}?rnd={rnd:016x}");
        let req = Request::get(&uri)
            .header("Host", TARGET_HOST)
            .header(CLIENT_ID_HEADER, ATTACKER)
            .header("Range", obr.range_case().header(n).to_string())
            .build();
        bed.request_with_small_window(&req, 1024);
    }
    snapshot(&[
        ("client-fcdn", bed.client_segment()),
        ("fcdn-bcdn", bed.fcdn_bcdn_segment()),
        ("bcdn-origin", bed.bcdn_origin_segment()),
    ])
}

/// Asserts the monotonicity property between an undefended and a
/// defended twin of the same stream.
fn assert_never_amplified_more(label: &str, undefended: &SegmentBytes, defended: &SegmentBytes) {
    assert_eq!(
        undefended.len(),
        defended.len(),
        "{label}: segment sets differ"
    );
    let client_requests = undefended[0].1;
    assert_eq!(
        client_requests, defended[0].1,
        "{label}: twins must see the identical client request stream"
    );
    for ((segment, _, raw), (_, _, shielded)) in undefended.iter().zip(defended) {
        // Same client request bytes on both twins, so per-segment
        // amplification is monotone iff response bytes are.
        assert!(
            shielded <= raw,
            "{label}: defense increased {segment} bytes ({raw} -> {shielded})"
        );
        let raw_amp = *raw as f64 / client_requests.max(1) as f64;
        let shielded_amp = *shielded as f64 / client_requests.max(1) as f64;
        assert!(
            shielded_amp <= raw_amp,
            "{label}: {segment} amplification rose ({raw_amp:.2} -> {shielded_amp:.2})"
        );
    }
}

#[test]
fn defense_never_increases_sbr_amplification_for_any_vendor() {
    for vendor in Vendor::ALL {
        let undefended = drive_sbr(vendor, None, true);
        let layer = Arc::new(DefenseLayer::new(EnforceConfig::default()));
        let defended = drive_sbr(vendor, Some(layer.clone()), true);
        assert_never_amplified_more(&format!("sbr {}", vendor.name()), &undefended, &defended);
        // The attacker must actually be contained, not merely not helped.
        let victim = undefended.last().expect("origin segment").2;
        let shielded = defended.last().expect("origin segment").2;
        assert!(
            shielded < victim,
            "sbr {}: defense should cut origin bytes ({victim} -> {shielded})",
            vendor.name()
        );
        let report = layer
            .client_report(ATTACKER)
            .expect("attacker was observed");
        assert!(report.suspects > 0, "sbr {}: never flagged", vendor.name());
    }
}

#[test]
fn defense_never_increases_obr_amplification_for_any_cascade() {
    for (fcdn, bcdn) in obr_combos() {
        let undefended = drive_obr(fcdn, bcdn, None, true);
        let layer = Arc::new(DefenseLayer::new(EnforceConfig::default()));
        let defended = drive_obr(fcdn, bcdn, Some(layer.clone()), true);
        let label = format!("obr {} -> {}", fcdn.name(), bcdn.name());
        assert_never_amplified_more(&label, &undefended, &defended);
        // fcdn-bcdn is the victim link (§V-D); it must shrink outright.
        let victim = undefended[1].2;
        let shielded = defended[1].2;
        assert!(
            shielded < victim,
            "{label}: defense should cut the fcdn-bcdn link ({victim} -> {shielded})"
        );
        let report = layer
            .client_report(ATTACKER)
            .expect("attacker was observed");
        assert!(report.suspects > 0, "{label}: never flagged");
    }
}

#[test]
fn defense_is_byte_transparent_for_benign_only_streams() {
    // Without an attacker in the stream the defended twin must be a
    // byte-exact no-op on every segment — zero benign windows throttled,
    // deflated, or blocked (the acceptance bar for §VI-C deployment).
    for &vendor in &[Vendor::Akamai, Vendor::Cloudflare, Vendor::KeyCdn] {
        let undefended = drive_sbr(vendor, None, false);
        let layer = Arc::new(DefenseLayer::new(EnforceConfig::default()));
        let defended = drive_sbr(vendor, Some(layer.clone()), false);
        assert_eq!(
            undefended,
            defended,
            "benign-only {} stream must be untouched",
            vendor.name()
        );
        for report in layer.report() {
            assert_eq!(
                report.blocked,
                0,
                "{}: benign client blocked",
                vendor.name()
            );
            assert_eq!(
                (report.deflated, report.throttled),
                (0, 0),
                "{}: benign client degraded",
                vendor.name()
            );
        }
    }
    let undefended = drive_obr(Vendor::Cdn77, Vendor::CdnSun, None, false);
    let defended = drive_obr(
        Vendor::Cdn77,
        Vendor::CdnSun,
        Some(Arc::new(DefenseLayer::new(EnforceConfig::default()))),
        false,
    );
    assert_eq!(
        undefended, defended,
        "benign-only cascade must be untouched"
    );
}
