//! Property-based tests (proptest) on the core invariants of the
//! substrate and the attacks.

use proptest::prelude::*;

use rangeamp::attack::SbrAttack;
use rangeamp::{Testbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::Vendor;
use rangeamp_http::multipart::{self, MultipartBuilder};
use rangeamp_http::range::{coalesce, ByteRangeSpec, RangeHeader, ResolvedRange};
use rangeamp_http::{wire, Body, Request, StatusCode};
use rangeamp_origin::{OriginServer, ResourceStore};

fn spec_strategy() -> impl Strategy<Value = ByteRangeSpec> {
    prop_oneof![
        (0u64..100_000).prop_flat_map(|first| {
            (Just(first), first..200_000u64)
                .prop_map(|(first, last)| ByteRangeSpec::FromTo { first, last })
        }),
        (0u64..100_000).prop_map(|first| ByteRangeSpec::From { first }),
        (1u64..100_000).prop_map(|len| ByteRangeSpec::Suffix { len }),
    ]
}

fn header_strategy() -> impl Strategy<Value = RangeHeader> {
    proptest::collection::vec(spec_strategy(), 1..12)
        .prop_map(|specs| RangeHeader::new(specs).expect("strategy yields valid specs"))
}

proptest! {
    #[test]
    fn range_headers_round_trip_display_parse(header in header_strategy()) {
        let text = header.to_string();
        let reparsed = RangeHeader::parse(&text).expect("display output is valid");
        prop_assert_eq!(reparsed, header);
    }

    #[test]
    fn resolution_is_always_in_bounds(
        header in header_strategy(),
        complete in 1u64..1_000_000,
    ) {
        for range in header.resolve(complete) {
            prop_assert!(range.first <= range.last);
            prop_assert!(range.last < complete);
            prop_assert!(!range.is_empty() && range.len() <= complete);
        }
    }

    #[test]
    fn coalesce_is_sorted_disjoint_and_idempotent(
        header in header_strategy(),
        complete in 1u64..1_000_000,
    ) {
        let resolved = header.resolve(complete);
        let merged = coalesce(&resolved);
        for window in merged.windows(2) {
            // Strictly increasing and non-touching.
            prop_assert!(window[0].last + 1 < window[1].first);
        }
        prop_assert_eq!(coalesce(&merged), merged.clone());
        // Coalescing never grows the byte span.
        let naive: u64 = resolved.iter().map(ResolvedRange::len).sum();
        let merged_total: u64 = merged.iter().map(ResolvedRange::len).sum();
        prop_assert!(merged_total <= naive);
    }

    #[test]
    fn coalesce_preserves_covered_bytes(
        header in header_strategy(),
        complete in 1u64..4096,
    ) {
        let resolved = header.resolve(complete);
        let merged = coalesce(&resolved);
        let mut covered_before = vec![false; complete as usize];
        for r in &resolved {
            for i in r.first..=r.last {
                covered_before[i as usize] = true;
            }
        }
        let mut covered_after = vec![false; complete as usize];
        for r in &merged {
            for i in r.first..=r.last {
                covered_after[i as usize] = true;
            }
        }
        prop_assert_eq!(covered_before, covered_after);
    }

    #[test]
    fn origin_single_range_responses_are_exact(
        first in 0u64..2048,
        span in 0u64..512,
        size in 1u64..4096,
    ) {
        let mut store = ResourceStore::new();
        store.add_synthetic("/p.bin", size, "application/octet-stream");
        let origin = OriginServer::new(store);
        let last = first + span;
        let req = Request::get("/p.bin")
            .header("Range", format!("bytes={first}-{last}"))
            .build();
        let resp = origin.handle(&req);
        if first < size {
            prop_assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
            let effective_last = last.min(size - 1);
            prop_assert_eq!(resp.body().len(), effective_last - first + 1);
            prop_assert_eq!(
                resp.headers().get("content-range").map(str::to_string),
                Some(format!("bytes {first}-{effective_last}/{size}"))
            );
        } else {
            prop_assert_eq!(resp.status(), StatusCode::RANGE_NOT_SATISFIABLE);
        }
    }

    #[test]
    fn multipart_round_trips_for_arbitrary_satisfiable_sets(
        header in header_strategy(),
        complete in 1u64..4096,
    ) {
        let resolved = header.resolve(complete);
        prop_assume!(!resolved.is_empty());
        let content = Body::from((0..complete).map(|i| i as u8).collect::<Vec<_>>());
        let mut builder = MultipartBuilder::new("x/y", complete);
        for r in &resolved {
            builder = builder.part(*r, content.slice(r.first, r.last + 1));
        }
        let payload = builder.build();
        prop_assert_eq!(builder.encoded_len(), payload.len());
        let parts = multipart::parse(payload.as_bytes(), multipart::DEFAULT_BOUNDARY)
            .expect("well-formed");
        prop_assert_eq!(parts.len(), resolved.len());
        for (part, range) in parts.iter().zip(&resolved) {
            let expected = content.slice(range.first, range.last + 1);
            prop_assert_eq!(part.body.as_bytes(), expected.as_bytes());
        }
    }

    #[test]
    fn wire_request_round_trip(
        path_seg in "[a-z]{1,12}",
        query in proptest::option::of("[a-z0-9]{1,16}"),
        header in header_strategy(),
    ) {
        let target = match query {
            Some(q) => format!("/{path_seg}?r={q}"),
            None => format!("/{path_seg}"),
        };
        let req = Request::get(&target)
            .header("Host", "victim.example")
            .header("Range", header.to_string())
            .build();
        let bytes = req.to_wire_bytes();
        prop_assert_eq!(bytes.len() as u64, req.wire_len());
        let parsed = wire::decode_request(&bytes).expect("round trip");
        prop_assert_eq!(parsed, req);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_vendor_serves_correct_bytes_for_any_satisfiable_single_range(
        vendor_index in 0usize..13,
        first in 0u64..60_000,
        span in 0u64..512,
    ) {
        let size = 65_536u64;
        let vendor = Vendor::ALL[vendor_index];
        let bed = Testbed::builder().vendor(vendor).resource(TARGET_PATH, size).build();
        let last = (first + span).min(size - 1);
        let req = Request::get(&format!("{TARGET_PATH}?p={first}"))
            .header("Host", TARGET_HOST)
            .header("Range", format!("bytes={first}-{last}"))
            .build();
        let resp = bed.request(&req);
        prop_assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
        let expected = bed
            .origin()
            .store()
            .get(TARGET_PATH)
            .expect("resource")
            .slice(first, last);
        prop_assert_eq!(resp.body().as_bytes(), expected.as_bytes());
    }

    #[test]
    fn sbr_amplification_is_monotone_enough_in_size(
        vendor_index in 0usize..13,
        small_kb in 64u64..256,
    ) {
        // Doubling the resource must not shrink the amplification factor
        // (sub-plateau sizes).
        let vendor = Vendor::ALL[vendor_index];
        let small = small_kb * 1024;
        let f_small = SbrAttack::new(vendor, small).run().amplification_factor();
        let f_large = SbrAttack::new(vendor, 2 * small).run().amplification_factor();
        prop_assert!(
            f_large >= f_small * 0.95,
            "{} shrank: {} KB → {:.1}x, {} KB → {:.1}x",
            vendor, small_kb, f_small, 2 * small_kb, f_large
        );
    }
}
