//! Integration tests for the `rangeamp` CLI binary.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rangeamp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let output = run(&[]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let output = run(&["help"]);
    assert!(output.status.success());
    assert!(stdout(&output).contains("rangeamp"));
}

#[test]
fn list_names_all_vendors_and_obr_roles() {
    let output = run(&["list"]);
    assert!(output.status.success());
    let text = stdout(&output);
    for vendor in ["Akamai", "Cloudflare", "Tencent Cloud"] {
        assert!(text.contains(vendor), "{text}");
    }
    assert!(text.contains("StackPath [OBR-FCDN] [OBR-BCDN]"), "{text}");
}

#[test]
fn sbr_reports_amplification() {
    let output = run(&["sbr", "--cdn", "akamai", "--size-mb", "1"]);
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("exploited case: bytes=0-0"), "{text}");
    assert!(text.contains('×'), "{text}");
}

#[test]
fn sbr_trace_prints_both_segments() {
    let output = run(&["sbr", "--cdn", "fastly", "--size-mb", "1", "--trace"]);
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("-- client-cdn --"), "{text}");
    assert!(text.contains("-- cdn-origin --"), "{text}");
    assert!(text.contains("-> GET /target.bin"), "{text}");
}

#[test]
fn obr_reports_max_n() {
    let output = run(&["obr", "--fcdn", "cdn77", "--bcdn", "azure"]);
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(
        text.contains("max n admitted by header limits: 64"),
        "{text}"
    );
    assert!(text.contains("amplification"), "{text}");
}

#[test]
fn vendor_names_are_fuzzy_matched() {
    for spelling in ["gcorelabs", "G-Core Labs", "g-core-labs", "GCORELABS"] {
        let output = run(&["drop", "--cdn", spelling, "--size-mb", "1"]);
        assert!(output.status.success(), "{spelling}");
    }
}

#[test]
fn unknown_vendor_fails_with_hint() {
    let output = run(&["sbr", "--cdn", "nopecdn"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("rangeamp list"));
}

#[test]
fn unknown_command_fails() {
    let output = run(&["frobnicate"]);
    assert!(!output.status.success());
}

#[test]
fn invalid_number_fails_cleanly() {
    let output = run(&["sbr", "--cdn", "akamai", "--size-mb", "lots"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("invalid --size-mb"));
}
