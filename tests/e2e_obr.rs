//! End-to-end OBR integration tests: the 11 cascaded combinations of
//! Table V, max-n solving, traffic asymmetry, and the attacker's cost
//! controls.

use rangeamp::attack::{obr_combos, ObrAttack};
use rangeamp::{CascadeTestbed, TARGET_HOST, TARGET_PATH};
use rangeamp_cdn::Vendor;
use rangeamp_http::{Request, StatusCode};

/// Paper Table V (FCDN, BCDN, max n).
const TABLE5_N: [(&str, &str, usize); 11] = [
    ("CDN77", "Akamai", 5455),
    ("CDN77", "Azure", 64),
    ("CDN77", "StackPath", 5455),
    ("CDNsun", "Akamai", 5456),
    ("CDNsun", "Azure", 64),
    ("CDNsun", "StackPath", 5456),
    ("Cloudflare", "Akamai", 10750),
    ("Cloudflare", "Azure", 64),
    ("Cloudflare", "StackPath", 10750),
    ("StackPath", "Akamai", 10801),
    ("StackPath", "Azure", 64),
];

fn vendor(name: &str) -> Vendor {
    Vendor::ALL
        .into_iter()
        .find(|v| v.name() == name)
        .expect("vendor exists")
}

#[test]
fn max_n_matches_table5_within_two_percent() {
    for (fcdn, bcdn, paper_n) in TABLE5_N {
        let n = ObrAttack::new(vendor(fcdn), vendor(bcdn)).max_n();
        let ratio = n as f64 / paper_n as f64;
        assert!(
            (0.98..=1.02).contains(&ratio),
            "{fcdn}→{bcdn}: max n {n} vs paper {paper_n}"
        );
    }
}

#[test]
fn all_eleven_combos_amplify() {
    for (fcdn, bcdn) in obr_combos() {
        // Modest n keeps the test quick; amplification ≈ n for a 1 KB
        // resource.
        let report = ObrAttack::new(fcdn, bcdn).overlapping_ranges(32).run();
        let factor = report.amplification_factor();
        assert!(factor > 16.0, "{fcdn}→{bcdn}: factor {factor:.1} at n=32");
    }
}

#[test]
fn amplification_scales_linearly_with_n() {
    // §IV-C: "response traffic in the fcdn-bcdn connection is nearly
    // proportional to the number of overlapping ranges".
    let f32 = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai)
        .overlapping_ranges(32)
        .run()
        .amplification_factor();
    let f128 = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai)
        .overlapping_ranges(128)
        .run()
        .amplification_factor();
    let ratio = f128 / f32;
    assert!((3.5..=4.5).contains(&ratio), "expected ≈4×, got {ratio:.2}");
}

#[test]
fn bcdn_origin_traffic_is_independent_of_n() {
    // §IV-C: "when the target resource is fixed, response traffic in the
    // bcdn-origin connection is always roughly the same".
    let small = ObrAttack::new(Vendor::StackPath, Vendor::Akamai)
        .overlapping_ranges(8)
        .run();
    let large = ObrAttack::new(Vendor::StackPath, Vendor::Akamai)
        .overlapping_ranges(512)
        .run();
    assert_eq!(small.server_to_bcdn_bytes, large.server_to_bcdn_bytes);
    assert!(large.bcdn_to_fcdn_bytes > 50 * small.bcdn_to_fcdn_bytes);
}

#[test]
fn paper_headline_cloudflare_akamai_full_run() {
    // §I: "an attacker is able to force specific nodes of these two CDNs
    // to transfer traffic over 12MB with just one multi-range request".
    let report = ObrAttack::new(Vendor::Cloudflare, Vendor::Akamai).run();
    assert!(report.n >= 10_000);
    // "over 12MB" — the paper's own measurement is 12 456 915 B.
    assert!(
        report.bcdn_to_fcdn_bytes > 12_000_000,
        "fcdn-bcdn carried {} bytes",
        report.bcdn_to_fcdn_bytes
    );
    assert!(report.server_to_bcdn_bytes < 2048);
}

#[test]
fn azure_bcdn_is_capped_at_64_parts() {
    let report = ObrAttack::new(Vendor::Cloudflare, Vendor::Azure).run();
    assert_eq!(report.n, 64);
    let factor = report.amplification_factor();
    assert!(
        (30.0..=80.0).contains(&factor),
        "paper: ≈53, got {factor:.1}"
    );
}

#[test]
fn attacker_cost_is_capped_by_receive_window() {
    let report = ObrAttack::new(Vendor::StackPath, Vendor::Akamai).run();
    // The attacker accepted ≤ 1 KB while the victim link moved megabytes.
    assert!(report.attacker_bytes <= 1024);
    assert!(report.bcdn_to_fcdn_bytes > 10 * 1024 * 1024);
}

#[test]
fn non_vulnerable_bcdn_defuses_the_cascade() {
    // Fastly coalesces multi-range replies (absent from Table III), so a
    // Cloudflare→Fastly cascade must not amplify.
    let bed = CascadeTestbed::new(Vendor::Cloudflare, Vendor::Fastly);
    let req = Request::get(TARGET_PATH)
        .header("Host", TARGET_HOST)
        .header("Range", "bytes=0-,0-,0-,0-")
        .build();
    let resp = bed.request(&req);
    assert_eq!(resp.status(), StatusCode::PARTIAL_CONTENT);
    let middle = bed.fcdn_bcdn_segment().stats().response_bytes;
    let origin = bed.bcdn_origin_segment().stats().response_bytes;
    assert!(
        middle < 3 * origin,
        "no inflation expected: {middle} vs {origin}"
    );
}

#[test]
fn cdnsun_fcdn_requires_nonzero_leading_range() {
    // Table II: CDNsun only relays multi-range sets whose first range
    // starts at ≥ 1, so the attack uses bytes=1-,0-,...,0-.
    let attack = ObrAttack::new(Vendor::CdnSun, Vendor::Akamai).overlapping_ranges(16);
    let report = attack.run();
    assert!(report.amplification_factor() > 8.0);
    assert_eq!(report.exploited_case, "bytes=1-,0-,...,0-");
}

#[test]
fn origin_with_ranges_disabled_replies_200_to_the_bcdn() {
    let bed = CascadeTestbed::new(Vendor::Cloudflare, Vendor::Akamai);
    let req = Request::get(TARGET_PATH)
        .header("Host", TARGET_HOST)
        .header("Range", "bytes=0-,0-")
        .build();
    bed.request(&req);
    let captured = bed.bcdn_origin_segment().capture();
    let statuses: Vec<String> = captured
        .in_direction(rangeamp_net::Direction::Downstream)
        .iter()
        .map(|e| e.start_line.clone())
        .collect();
    assert!(
        statuses.iter().all(|s| s.contains("200")),
        "origin must ignore ranges: {statuses:?}"
    );
}

#[test]
fn obr_parts_carry_correct_content() {
    // Even the attack traffic is well-formed multipart/byteranges.
    let bed = CascadeTestbed::new(Vendor::Cloudflare, Vendor::Akamai);
    let req = Request::get(TARGET_PATH)
        .header("Host", TARGET_HOST)
        .header("Range", "bytes=0-,0-,0-")
        .build();
    let resp = bed.request(&req);
    let content_type = resp.headers().get("content-type").expect("multipart");
    let boundary = content_type.split("boundary=").nth(1).expect("boundary");
    let parts = rangeamp_http::multipart::parse(resp.body().as_bytes(), boundary)
        .expect("well-formed multipart");
    assert_eq!(parts.len(), 3);
    let full = bed
        .origin()
        .store()
        .get(TARGET_PATH)
        .expect("resource")
        .full_body();
    for part in parts {
        assert_eq!(part.body.as_bytes(), full.as_bytes());
    }
}
