//! Scanner conformance: the behaviour-derived Tables I–III must agree
//! with the paper's findings vendor by vendor.

use rangeamp::scanner::Scanner;
use rangeamp_cdn::{RangePolicy, Vendor};

fn scanner() -> Scanner {
    Scanner::default()
}

#[test]
fn table1_every_vendor_is_sbr_vulnerable() {
    let rows = scanner().scan_table1();
    for vendor in Vendor::ALL {
        assert!(
            rows.iter().any(|r| r.vendor == vendor.name()),
            "{vendor} missing from Table I:\n{rows:#?}"
        );
    }
}

#[test]
fn table1_deletion_vendors_forward_none() {
    let rows = scanner().scan_table1();
    for vendor in [
        "Akamai",
        "Fastly",
        "G-Core Labs",
        "Cloudflare",
        "Tencent Cloud",
    ] {
        let vendor_rows: Vec<_> = rows.iter().filter(|r| r.vendor == vendor).collect();
        assert!(
            vendor_rows.iter().any(|r| r.forwarded_format == "None"),
            "{vendor}: {vendor_rows:#?}"
        );
    }
}

#[test]
fn table1_alibaba_is_suffix_only() {
    let rows = scanner().scan_vendor_table1(Vendor::AlibabaCloud);
    assert_eq!(rows.len(), 1, "{rows:#?}");
    assert!(rows[0].vulnerable_format.starts_with("bytes=-suffix"));
    assert_eq!(rows[0].forwarded_format, "None");
}

#[test]
fn table1_cdn77_condition_is_first_below_1024() {
    let rows = scanner().scan_vendor_table1(Vendor::Cdn77);
    assert!(
        rows.iter()
            .any(|r| r.vulnerable_format == "bytes=first-last (first < 1024)"),
        "{rows:#?}"
    );
}

#[test]
fn table1_cdnsun_rule_is_zero_anchored() {
    let rows = scanner().scan_vendor_table1(Vendor::CdnSun);
    assert!(
        rows.iter().any(|r| r.vulnerable_format == "bytes=0-last"),
        "{rows:#?}"
    );
}

#[test]
fn table1_azure_window_row_present() {
    let rows = scanner().scan_vendor_table1(Vendor::Azure);
    let window = rows
        .iter()
        .find(|r| r.vulnerable_format.starts_with("bytes=8388608-8388608"))
        .unwrap_or_else(|| panic!("window row missing: {rows:#?}"));
    assert_eq!(window.forwarded_format, "None & bytes=first'-last'");
}

#[test]
fn table1_huawei_thresholds_are_exactly_10mb() {
    let rows = scanner().scan_vendor_table1(Vendor::HuaweiCloud);
    assert!(
        rows.iter()
            .any(|r| r.vulnerable_format == "bytes=-suffix (F < 10MB)"),
        "{rows:#?}"
    );
    assert!(
        rows.iter()
            .any(|r| r.vulnerable_format == "bytes=first-last (F ≥ 10MB)"
                && r.forwarded_format == "None & None"),
        "{rows:#?}"
    );
}

#[test]
fn table1_stackpath_reforward_visible() {
    let rows = scanner().scan_vendor_table1(Vendor::StackPath);
    assert!(
        rows.iter()
            .any(|r| r.forwarded_format == "bytes=first-last & None"),
        "{rows:#?}"
    );
}

#[test]
fn table1_keycdn_two_step_visible() {
    let rows = scanner().scan_vendor_table1(Vendor::KeyCdn);
    assert!(
        rows.iter()
            .any(|r| r.forwarded_format == "bytes=first-last (& None)"),
        "{rows:#?}"
    );
}

#[test]
fn table1_cloudfront_is_pure_expansion() {
    let rows = scanner().scan_vendor_table1(Vendor::CloudFront);
    assert!(!rows.is_empty());
    for row in &rows {
        assert_eq!(row.forwarded_format, "bytes=first'-last'", "{rows:#?}");
    }
    assert!(
        rows.iter()
            .any(|r| r.vulnerable_format == "bytes=first1-last1,...,firstn-lastn"),
        "multi-range expansion row missing: {rows:#?}"
    );
}

#[test]
fn table2_exactly_the_paper_fcdns() {
    let rows = scanner().scan_table2();
    let mut vendors: Vec<&str> = rows.iter().map(|r| r.vendor.as_str()).collect();
    vendors.sort_unstable();
    assert_eq!(vendors, vec!["CDN77", "CDNsun", "Cloudflare", "StackPath"]);
}

#[test]
fn table3_exactly_the_paper_bcdns() {
    let rows = scanner().scan_table3();
    let mut vendors: Vec<&str> = rows.iter().map(|r| r.vendor.as_str()).collect();
    vendors.sort_unstable();
    assert_eq!(vendors, vec!["Akamai", "Azure", "StackPath"]);
}

#[test]
fn probe_policies_match_section_iii_vocabulary() {
    let scanner = scanner();
    // Akamai deletes first-last.
    let (obs, _) = scanner.probe(Vendor::Akamai, 1024 * 1024, "bytes=0-0");
    assert_eq!(obs.policy(), Some(RangePolicy::Deletion));
    // CloudFront expands.
    let (obs, _) = scanner.probe(Vendor::CloudFront, 1024 * 1024, "bytes=0-0");
    assert_eq!(obs.policy(), Some(RangePolicy::Expansion));
    // KeyCDN is lazy on first contact.
    let (obs, _) = scanner.probe(Vendor::KeyCdn, 1024 * 1024, "bytes=0-0");
    assert_eq!(obs.policy(), Some(RangePolicy::Laziness));
}

#[test]
fn fuzzing_never_breaks_a_vendor() {
    // Every ABNF-generated valid range request must produce a well-formed
    // HTTP exchange on every vendor (no panics, sane statuses).
    let scanner = Scanner::new(99);
    for vendor in Vendor::ALL {
        for obs in scanner.fuzz_vendor(vendor, 10) {
            assert!(
                [200u16, 206, 416].contains(&obs.client_status),
                "{vendor}: {obs:?}"
            );
        }
    }
}
